"""Live progress view and offline metrics reporting.

Two consumers of the sampler's output live here:

* :class:`ProgressView` -- an opt-in single-line TTY view refreshed
  from the sampler's ``on_sample`` callback (ops/s, p99, faults,
  compactions, cache hit rate).  It writes ``\\r``-terminated lines to
  any stream, so tests drive it with a ``StringIO``.
* ``summarize_series`` / ``diff_series`` -- the ``repro metrics``
  subcommands.  ``diff`` aligns two runs **by replay progress** (not
  wall time -- a slower run stretches the same logical work over more
  seconds) into fixed phase bins and prints per-phase throughput/p99
  deltas, attributing the worst phase to the internal-activity series
  that diverged most.  This is what turns "batching got slower" into
  "compaction stall at 62%".
"""

from __future__ import annotations

from typing import Any, Dict, IO, List, Optional, Sequence, Tuple

from .metrics import read_series


class ProgressView:
    """Single-line soft-refresh replay progress display."""

    def __init__(self, stream: IO[str], store: str = "") -> None:
        self.stream = stream
        self.store = store
        self._wrote = False

    def __call__(self, sample: dict) -> None:
        gauges = sample.get("gauges", {})
        parts = [
            f"[{self.store}]" if self.store else "[replay]",
            f"{sample.get('progress', 0.0) * 100.0:5.1f}%",
            f"{_si(sample.get('throughput_ops', 0.0))}op/s",
            f"p99={sample.get('p99_us', 0.0):.0f}us",
        ]
        compactions = gauges.get("ops.compactions")
        if compactions is not None:
            parts.append(f"compactions={int(compactions)}")
        hit_rate = None
        for key in (
            "lsm.block_cache_hit_rate",
            "btree.page_cache_hit_rate",
        ):
            if gauges.get(key) is not None:
                hit_rate = gauges[key]
                break
        if hit_rate is not None:
            parts.append(f"cache={hit_rate * 100.0:.0f}%")
        if "faults" in sample:
            parts.append(f"faults={sample['faults']}")
        if "retries" in sample:
            parts.append(f"retries={sample['retries']}")
        line = "  ".join(parts)
        self.stream.write("\r" + line.ljust(78)[:118])
        try:
            self.stream.flush()
        except Exception:
            pass
        self._wrote = True

    def finish(self) -> None:
        """Terminate the refresh line so later output starts clean."""
        if self._wrote:
            self.stream.write("\n")


def _si(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.0f}"


# -- offline reporting -------------------------------------------------------

#: gauge series treated as cumulative internal-activity counters for
#: phase attribution (per-phase increase is meaningful work done)
ACTIVITY_SERIES = (
    "ops.flushes",
    "ops.compactions",
    "ops.bytes_written",
    "ops.bytes_read",
    "btree.page_ins",
    "btree.page_outs",
    "faster.disk_reads",
    "faster.sealed_segments",
    "remote.reconnects",
    "integrity.detected",
    "lsm.quarantined",
)


def summarize_series(path: str) -> Dict[str, Any]:
    """Aggregate one metrics JSONL file into a run summary."""
    header, samples = read_series(path)
    if not samples:
        return {"path": path, "store": header.get("store", ""), "samples": 0}
    last = samples[-1]
    duration = last.get("t_s", 0.0)
    # A merged multi-process series interleaves per-shard samples whose
    # cumulative counters (ops, gauges, faults) are per-shard: sum each
    # shard's first/last instead of reading the globally-last sample,
    # which would report one shard's counters as the whole run's.
    first_by_lane: Dict[Any, dict] = {}
    last_by_lane: Dict[Any, dict] = {}
    for sample in samples:
        lane = sample.get("shard")
        first_by_lane.setdefault(lane, sample)
        last_by_lane[lane] = sample
    ops = sum(s.get("ops", 0) for s in last_by_lane.values())
    p99s = [s["p99_us"] for s in samples if s.get("interval_ops")]
    throughputs = [
        s["throughput_ops"] for s in samples if s.get("interval_ops")
    ]
    summary: Dict[str, Any] = {
        "path": path,
        "store": header.get("store", ""),
        "samples": len(samples),
        "duration_s": round(duration, 3),
        "ops": ops,
        "mean_throughput_ops": round(ops / duration, 1) if duration else 0.0,
        "min_interval_throughput_ops": round(min(throughputs), 1) if throughputs else 0.0,
        "max_p99_us": round(max(p99s), 1) if p99s else 0.0,
    }
    activity: Dict[str, float] = {}
    for name in ACTIVITY_SERIES:
        delta = 0.0
        present = False
        for lane, lane_last in last_by_lane.items():
            value = lane_last.get("gauges", {}).get(name)
            if value is None:
                continue
            present = True
            start = first_by_lane[lane].get("gauges", {}).get(name) or 0
            delta += value - start
        if present and delta:
            activity[name] = delta
    if activity:
        summary["activity"] = activity
    if any("faults" in s for s in last_by_lane.values()):
        summary["faults"] = sum(
            s.get("faults", 0) for s in last_by_lane.values()
        )
        summary["retries"] = sum(
            s.get("retries", 0) for s in last_by_lane.values()
        )
    return summary


def format_summary(summary: Dict[str, Any]) -> str:
    lines = [
        f"{summary['path']}  store={summary.get('store') or '?'}  "
        f"samples={summary.get('samples', 0)}"
    ]
    if summary.get("samples"):
        lines.append(
            f"  {summary['ops']} ops in {summary['duration_s']:.2f}s"
            f"  ({_si(summary['mean_throughput_ops'])}op/s mean,"
            f" {_si(summary['min_interval_throughput_ops'])}op/s worst interval,"
            f" max p99 {summary['max_p99_us']:.0f}us)"
        )
        for name, delta in sorted(summary.get("activity", {}).items()):
            lines.append(f"  {name:28s} +{delta:g}")
        if "faults" in summary:
            lines.append(
                f"  faults={summary['faults']} retries={summary['retries']}"
            )
    return "\n".join(lines)


def _phase_bins(samples: Sequence[dict], bins: int) -> List[List[dict]]:
    """Bucket samples into ``bins`` equal spans of replay progress."""
    out: List[List[dict]] = [[] for _ in range(bins)]
    for sample in samples:
        progress = sample.get("progress", 0.0)
        index = min(int(progress * bins), bins - 1)
        out[index].append(sample)
    return out


def _phase_stats(bucket: Sequence[dict]) -> Optional[Dict[str, float]]:
    active = [s for s in bucket if s.get("interval_ops")]
    if not active:
        return None
    ops = sum(s["interval_ops"] for s in active)
    seconds = sum(
        s["interval_ops"] / s["throughput_ops"]
        for s in active
        if s.get("throughput_ops")
    )
    return {
        "throughput_ops": ops / seconds if seconds else 0.0,
        "p99_us": max(s["p99_us"] for s in active),
    }


def _phase_activity(bucket: Sequence[dict]) -> Dict[str, float]:
    gauged = [s for s in bucket if s.get("gauges")]
    if len(gauged) < 1:
        return {}
    first = gauged[0]["gauges"]
    last = gauged[-1]["gauges"]
    out = {}
    for name in ACTIVITY_SERIES:
        if last.get(name) is not None:
            out[name] = last[name] - (first.get(name) or 0)
    return out


def diff_series(
    path_a: str, path_b: str, bins: int = 10
) -> Dict[str, Any]:
    """Align two runs by replay progress and compute per-phase deltas.

    Returns a dict with one entry per phase bin carrying both runs'
    throughput and p99, plus an ``attribution``: for the phase where
    run B loses the most throughput relative to run A, the internal-
    activity series whose per-phase delta diverges most between runs.
    """
    header_a, samples_a = read_series(path_a)
    header_b, samples_b = read_series(path_b)
    bins_a = _phase_bins(samples_a, bins)
    bins_b = _phase_bins(samples_b, bins)
    phases: List[Dict[str, Any]] = []
    worst: Optional[Tuple[float, int]] = None
    for index in range(bins):
        stats_a = _phase_stats(bins_a[index])
        stats_b = _phase_stats(bins_b[index])
        phase: Dict[str, Any] = {
            "phase": index,
            "progress": f"{index * 100 // bins}-{(index + 1) * 100 // bins}%",
        }
        if stats_a and stats_b:
            phase["a_throughput_ops"] = round(stats_a["throughput_ops"], 1)
            phase["b_throughput_ops"] = round(stats_b["throughput_ops"], 1)
            if stats_a["throughput_ops"] > 0:
                ratio = stats_b["throughput_ops"] / stats_a["throughput_ops"]
                phase["throughput_ratio"] = round(ratio, 3)
                if worst is None or ratio < worst[0]:
                    worst = (ratio, index)
            phase["a_p99_us"] = round(stats_a["p99_us"], 1)
            phase["b_p99_us"] = round(stats_b["p99_us"], 1)
        activity_a = _phase_activity(bins_a[index])
        activity_b = _phase_activity(bins_b[index])
        divergence: Dict[str, float] = {}
        for name in set(activity_a) | set(activity_b):
            delta = (activity_b.get(name) or 0) - (activity_a.get(name) or 0)
            if delta:
                divergence[name] = delta
        if divergence:
            phase["activity_delta"] = divergence
        phases.append(phase)
    result: Dict[str, Any] = {
        "a": {"path": path_a, "store": header_a.get("store", "")},
        "b": {"path": path_b, "store": header_b.get("store", "")},
        "bins": bins,
        "phases": phases,
    }
    if worst is not None:
        ratio, index = worst
        attribution: Dict[str, Any] = {
            "phase": index,
            "progress": phases[index]["progress"],
            "throughput_ratio": round(ratio, 3),
        }
        divergence = phases[index].get("activity_delta", {})
        if divergence:
            series, delta = max(
                divergence.items(), key=lambda kv: abs(kv[1])
            )
            attribution["series"] = series
            attribution["delta"] = delta
        result["attribution"] = attribution
    return result


def format_diff(diff: Dict[str, Any]) -> str:
    lines = [
        f"A: {diff['a']['path']} ({diff['a'].get('store') or '?'})",
        f"B: {diff['b']['path']} ({diff['b'].get('store') or '?'})",
        f"{'phase':>8s} {'A op/s':>12s} {'B op/s':>12s} {'B/A':>7s}"
        f" {'A p99us':>9s} {'B p99us':>9s}",
    ]
    for phase in diff["phases"]:
        if "a_throughput_ops" not in phase:
            continue
        ratio = phase.get("throughput_ratio")
        lines.append(
            f"{phase['progress']:>8s}"
            f" {phase['a_throughput_ops']:>12.0f}"
            f" {phase['b_throughput_ops']:>12.0f}"
            f" {ratio if ratio is not None else float('nan'):>7.3f}"
            f" {phase['a_p99_us']:>9.0f}"
            f" {phase['b_p99_us']:>9.0f}"
        )
        for name, delta in sorted(
            phase.get("activity_delta", {}).items(),
            key=lambda kv: -abs(kv[1]),
        ):
            lines.append(f"{'':>8s}   {name} {delta:+g}")
    attribution = diff.get("attribution")
    if attribution:
        lines.append("")
        sentence = (
            f"worst phase: {attribution['progress']}"
            f" (B runs at {attribution['throughput_ratio']:.2f}x of A)"
        )
        if "series" in attribution:
            sentence += (
                f", dominated by {attribution['series']}"
                f" ({attribution['delta']:+g} in B vs A)"
            )
        lines.append(sentence)
    return "\n".join(lines)


def diff_matrix(paths: Sequence[str], bins: int = 10) -> Dict[str, Any]:
    """N-way comparison: every run diffed pairwise against the first.

    Generalizes :func:`diff_series` past exactly two runs -- the first
    path is the baseline, and every other run gets the full phase-
    aligned diff (and attribution) against it.  Returns per-run overall
    throughput ratios plus the individual pairwise diffs.
    """
    if len(paths) < 2:
        raise ValueError("diff matrix needs at least two series")
    baseline = summarize_series(paths[0])
    runs: List[Dict[str, Any]] = []
    diffs: List[Dict[str, Any]] = []
    for path in paths[1:]:
        diff = diff_series(paths[0], path, bins=bins)
        diffs.append(diff)
        summary = summarize_series(path)
        entry: Dict[str, Any] = {
            "path": path,
            "store": summary.get("store", ""),
            "mean_throughput_ops": summary.get("mean_throughput_ops", 0.0),
            "max_p99_us": summary.get("max_p99_us", 0.0),
        }
        base_mean = baseline.get("mean_throughput_ops") or 0.0
        if base_mean:
            entry["throughput_ratio"] = round(
                (summary.get("mean_throughput_ops") or 0.0) / base_mean, 3
            )
        attribution = diff.get("attribution")
        if attribution:
            entry["worst_phase"] = attribution["progress"]
            entry["worst_ratio"] = attribution["throughput_ratio"]
            if "series" in attribution:
                entry["worst_series"] = attribution["series"]
        runs.append(entry)
    return {"baseline": baseline, "bins": bins, "runs": runs, "diffs": diffs}


def format_matrix(matrix: Dict[str, Any]) -> str:
    baseline = matrix["baseline"]
    lines = [
        f"baseline: {baseline['path']} ({baseline.get('store') or '?'})"
        f"  {_si(baseline.get('mean_throughput_ops', 0.0))}op/s mean,"
        f" max p99 {baseline.get('max_p99_us', 0.0):.0f}us",
        f"{'run':>3s} {'store':>14s} {'mean op/s':>12s} {'vs base':>8s}"
        f" {'max p99us':>10s}  worst phase",
    ]
    for index, run in enumerate(matrix["runs"], start=1):
        worst = ""
        if "worst_phase" in run:
            worst = f"{run['worst_phase']} at {run['worst_ratio']:.2f}x"
            if "worst_series" in run:
                worst += f" ({run['worst_series']})"
        ratio = run.get("throughput_ratio")
        lines.append(
            f"{index:>3d} {run.get('store') or '?':>14s}"
            f" {run.get('mean_throughput_ops', 0.0):>12.0f}"
            f" {ratio if ratio is not None else float('nan'):>7.2f}x"
            f" {run.get('max_p99_us', 0.0):>10.0f}  {worst}"
        )
        lines.append(f"    {run['path']}")
    return "\n".join(lines)
