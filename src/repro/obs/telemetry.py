"""Replay telemetry session: one object wiring all three obs pieces.

A :class:`ReplayTelemetry` describes *what to record* (trace path,
metrics path, progress stream, sampling interval); the replayer opens
a :meth:`session` around each run, which

1. installs a :class:`~repro.obs.tracing.SpanTracer` (if a trace path
   was requested) so the permanent instrumentation sites in the stores
   light up,
2. builds a :class:`~repro.obs.metrics.MetricsRegistry`, registers the
   connector's store gauges, and starts a
   :class:`~repro.obs.metrics.Sampler` thread (if a metrics path or
   progress view was requested), and
3. yields the shared :class:`~repro.obs.metrics.ReplayProgress` that
   the replay loop tees per-op latencies into.

Teardown runs in a ``finally``: the sampler takes its final sample and
closes its file, the tracer is uninstalled and exported, and the TTY
progress line is terminated -- even when the replay died on an
injected crash or a real exception, so telemetry output is always
complete and well-formed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import IO, Optional

from . import tracing
from .dashboard import ProgressView
from .metrics import MetricsRegistry, ReplayProgress, Sampler, register_store


class ReplayTelemetry:
    """Configuration for recording a replay; reusable across runs."""

    def __init__(
        self,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        progress_stream: Optional[IO[str]] = None,
        interval_ms: float = 100.0,
        tracer_capacity: int = 65536,
        meta: Optional[dict] = None,
    ) -> None:
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.progress_stream = progress_stream
        self.interval_ms = interval_ms
        self.tracer_capacity = tracer_capacity
        self.meta = meta or {}
        #: the most recent session's tracer/sampler, for inspection
        self.last_tracer: Optional[tracing.SpanTracer] = None
        self.last_sampler: Optional[Sampler] = None

    @property
    def wants_progress(self) -> bool:
        """True when the replay loop should tee latencies into a
        :class:`ReplayProgress` (any metrics or live view requested)."""
        return self.metrics_path is not None or self.progress_stream is not None

    @contextmanager
    def session(self, connector, total_ops: int, store_name: str = ""):
        """Record one replay; yields the shared progress object.

        ``connector`` may be any connector or store (gauges are
        discovered by duck typing); ``total_ops`` sizes the progress
        fraction.  Yields ``None`` for the progress when no metrics or
        view were requested -- the replay loop then skips the tee
        entirely and runs its unmodified fast path.
        """
        name = store_name or getattr(connector, "name", "")
        tracer = None
        if self.trace_path is not None:
            tracer = tracing.install(tracing.SpanTracer(self.tracer_capacity))
            self.last_tracer = tracer
        progress: Optional[ReplayProgress] = None
        sampler: Optional[Sampler] = None
        view: Optional[ProgressView] = None
        if self.wants_progress:
            registry = MetricsRegistry()
            register_store(registry, connector)
            progress = ReplayProgress(total_ops)
            if self.progress_stream is not None:
                view = ProgressView(self.progress_stream, store=name)
            sampler = Sampler(
                registry,
                progress,
                sink=self.metrics_path,
                interval_ms=self.interval_ms,
                on_sample=view,
                store=name,
                meta=self.meta,
            )
            self.last_sampler = sampler
            sampler.start()
        try:
            yield progress
        finally:
            if sampler is not None:
                sampler.stop()
            if view is not None:
                view.finish()
            if tracer is not None:
                if tracing.active() is tracer:
                    tracing.uninstall()
                tracer.export(self.trace_path)
