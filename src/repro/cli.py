"""Command-line interface to the Gadget harness.

Mirrors the workflow of the original tool's config-file driven binary::

    python -m repro workloads
    python -m repro generate -w tumbling-incremental -o trace.gdgt \
        --dataset borg --events 20000
    python -m repro analyze trace.gdgt
    python -m repro replay trace.gdgt --store rocksdb
    python -m repro compare trace.gdgt --stores rocksdb faster
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from .analysis import (
    average_stack_distance,
    composition_of,
    recommend_cache_size,
    render_table,
    total_unique_sequences,
    ttl_percentiles,
    working_set_over_time,
)
from .core import (
    DEFAULT_STORES,
    EvaluationRow,
    Gadget,
    GadgetConfig,
    KeyConfig,
    PerformanceEvaluator,
    SourceConfig,
    TraceReplayer,
    WORKLOADS,
)
from .datasets import (
    AzureConfig,
    BorgConfig,
    TaxiConfig,
    generate_azure,
    generate_borg,
    generate_taxi,
)
from .kvstores import STORE_NAMES, create_connector
from .kvstores.lsm import POLICY_NAMES
from .trace import AccessTrace

#: stores whose config understands the compaction/background knobs
_LSM_STORES = ("rocksdb", "lethe")


def _build_sources(args) -> List:
    """Materialize the harness input streams from CLI options."""
    spec = WORKLOADS[args.workload]
    if args.dataset == "synthetic":
        source = SourceConfig(
            num_events=args.events,
            keys=KeyConfig(num_keys=args.keys, distribution=args.key_dist),
            watermark_frequency=args.watermark_frequency,
            seed=args.seed,
        )
        if spec.num_inputs == 1:
            return [source]
        second = SourceConfig(
            num_events=args.events // 2,
            keys=KeyConfig(num_keys=args.keys, distribution=args.key_dist),
            watermark_frequency=args.watermark_frequency,
            seed=args.seed + 1,
        )
        return [source, second]
    if args.dataset == "borg":
        tasks, jobs = generate_borg(
            BorgConfig(target_events=args.events, seed=args.seed)
        )
        return [tasks] if spec.num_inputs == 1 else [tasks, jobs]
    if args.dataset == "taxi":
        trips, fares = generate_taxi(
            TaxiConfig(target_events=args.events, seed=args.seed)
        )
        return [trips] if spec.num_inputs == 1 else [trips, fares]
    if args.dataset == "azure":
        if spec.num_inputs != 1:
            raise SystemExit(
                "error: Azure is a single stream; joins cannot run on it "
                "(same restriction as the paper)"
            )
        return [generate_azure(AzureConfig(target_events=args.events, seed=args.seed))]
    raise SystemExit(f"error: unknown dataset {args.dataset!r}")


def cmd_workloads(args) -> int:
    rows = [
        [spec.name, spec.num_inputs, spec.description]
        for spec in WORKLOADS.values()
    ]
    print(render_table(["name", "inputs", "description"], rows,
                       title="predefined Gadget workloads"))
    return 0


def cmd_generate(args) -> int:
    if args.config:
        from .core.configfile import gadget_from_config

        gadget = gadget_from_config(args.config)
    else:
        if not args.workload:
            raise SystemExit("error: provide --workload or --config")
        sources = _build_sources(args)
        gadget = Gadget(args.workload, sources, GadgetConfig(interleave="time"))
    trace = gadget.generate()
    trace.save(args.output)
    comp = composition_of(trace)
    print(f"wrote {len(trace)} accesses ({trace.distinct_keys()} state keys) "
          f"to {args.output}")
    print(f"composition: get={comp.get:.3f} put={comp.put:.3f} "
          f"merge={comp.merge:.3f} delete={comp.delete:.3f}")
    return 0


def cmd_analyze(args) -> int:
    trace = AccessTrace.load(args.trace)
    comp = composition_of(trace)
    sizes = [s for _, s in working_set_over_time(trace, 100)]
    ttl = ttl_percentiles(trace)
    keys = trace.key_sequence()
    rows = [
        ["operations", len(trace)],
        ["distinct keys", trace.distinct_keys()],
        ["class", comp.classify()],
        ["get / put / merge / delete",
         f"{comp.get:.3f} / {comp.put:.3f} / {comp.merge:.3f} / {comp.delete:.3f}"],
        ["avg stack distance", round(average_stack_distance(keys), 1)],
        ["unique sequences (<=10)", total_unique_sequences(keys, 10)],
        ["peak working set", max(sizes) if sizes else 0],
        ["final working set", sizes[-1] if sizes else 0],
        ["TTL p50 / p90 / max",
         f"{ttl['p50']:.0f} / {ttl['p90']:.0f} / {ttl['max']:.0f}"],
    ]
    recommendation = recommend_cache_size(trace, args.target_hit_ratio)
    if recommendation is not None:
        rows.append(
            [f"cache for {args.target_hit_ratio:.0%} hits",
             f"{recommendation.cache_keys} keys "
             f"(~{recommendation.cache_bytes} bytes)"]
        )
    print(render_table(["metric", "value"], rows,
                       title=f"analysis of {args.trace}"))
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _fault_options(args):
    """Resolve --faults / --no-retry / --retry-attempts into a
    (fault_plan, retry_policy) pair shared by replay and compare."""
    from .faults import FaultPlan, RetryPolicy

    fault_plan = FaultPlan.load(args.faults) if args.faults else None
    retry_policy = None
    wants_retry = (fault_plan is not None or getattr(args, "crash_at", None) is not None)
    if wants_retry and not args.no_retry:
        retry_policy = RetryPolicy(max_attempts=args.retry_attempts)
    return fault_plan, retry_policy


def _cluster_requested(args) -> bool:
    return bool(getattr(args, "cluster", None) or
                getattr(args, "cluster_config", None))


def _cluster_settings(args, store: Optional[str] = None):
    """Resolve --cluster/--replicas/--ack/--cluster-config/--chaos into
    (ClusterConfig, ClusterFaultPlan-or-None, RetryPolicy-or-None).
    Explicit flags win over the config file; ``store`` (compare mode)
    overrides both."""
    from .cluster import ClusterConfig, load_cluster_config
    from .faults import ClusterFaultPlan, RetryPolicy

    base = (load_cluster_config(args.cluster_config).to_dict()
            if args.cluster_config else {})
    if args.cluster:
        base["partitions"] = args.cluster
    if args.replicas is not None:
        base["replicas"] = args.replicas
    if args.ack is not None:
        base["ack"] = args.ack
    if store is not None:
        base["store"] = store
    elif "store" not in base:
        base["store"] = args.store
    config = ClusterConfig.from_dict(base)
    chaos = ClusterFaultPlan.load(args.chaos) if args.chaos else None
    policy = None if args.no_retry else RetryPolicy(
        max_attempts=args.retry_attempts
    )
    return config, chaos, policy


def _cluster_rows(result) -> List[List]:
    summary = result.replay.summary()
    rows = [
        ["cluster", result.cluster],
        ["backing store", result.store],
        ["operations", result.operations],
        ["throughput (kops)", round(summary["throughput_kops"], 1)],
        ["p50 (us)", round(summary["p50_us"], 1)],
        ["p99 (us)", round(summary["p99_us"], 1)],
        ["p99.9 (us)", round(summary["p99.9_us"], 1)],
        ["failovers", result.failovers],
        ["chain repairs", result.chain_repairs],
        ["recovery (ms, slowest repair)", round(result.recovery_ms, 3)],
        ["lost-ack window (ops)", result.lost_ack_window],
        ["replication lag (ms, max)", round(result.replication_lag_ms, 3)],
        ["kills / restarts / isolations",
         f"{result.kills} / {result.restarts} / {result.isolations}"],
        ["keys verified", result.keys_checked],
        ["mismatches", result.mismatches],
        ["recovered ok", "yes" if result.recovered_ok else "NO"],
    ]
    if result.actions_executed:
        fired = ", ".join(f"{action}@{at}:{target}"
                          for at, action, target in result.actions_executed)
        rows.insert(13, ["chaos actions fired", fired])
    if result.actions_skipped:
        skipped = ", ".join(f"{action}@{at}:{target}"
                            for at, action, target in result.actions_skipped)
        rows.insert(14, ["chaos actions skipped", skipped])
    return rows


def _replay_cluster(args, trace) -> int:
    """The ``replay --cluster`` mode: one store, one cluster topology,
    optional chaos plan, verified against a single-node oracle."""
    from .cluster import evaluate_cluster_recovery

    if args.shards > 1 or args.processes:
        raise SystemExit(
            "error: --cluster is its own fan-out (N partitioned server "
            "chains); drop --shards/--processes"
        )
    if args.faults or args.crash_at is not None or args.disk_faults:
        raise SystemExit(
            "error: cluster replays take fault injection from --chaos "
            "(topology events); --faults/--crash-at/--disk-faults are "
            "single-node axes"
        )
    config, chaos, policy = _cluster_settings(args)
    telemetry = _telemetry_options(args)
    result = evaluate_cluster_recovery(
        trace,
        config=config,
        chaos=chaos,
        retry_policy=policy,
        service_rate=args.service_rate,
        batch_size=args.batch,
        pipeline_depth=args.pipeline,
        telemetry=telemetry,
    )
    print(render_table(["metric", "value"], _cluster_rows(result),
                       title="cluster replay result"))
    cluster_row = EvaluationRow.from_cluster(args.trace, result)
    cluster_row.batch_size = args.batch or 1
    cluster_row.pipeline_depth = args.pipeline or 1
    cluster_row.timeseries_path = args.metrics
    _lake_record(args, [cluster_row])
    _telemetry_note(args)
    return 0 if result.recovered_ok else 1


def _disk_plan(args):
    """Resolve --disk-faults (and a fault plan's nested ``disk``) into
    a DiskFaultPlan or None."""
    from .faults import DiskFaultPlan

    if getattr(args, "disk_faults", None):
        return DiskFaultPlan.load(args.disk_faults)
    return None


def _lsm_overrides(args) -> dict:
    """Resolve replay's --compaction / --background into store config
    overrides, rejecting stores without an LSM maintenance pipeline."""
    overrides = {}
    if getattr(args, "compaction", None):
        overrides["compaction_policy"] = args.compaction
    if getattr(args, "background", False):
        overrides["background"] = True
    if overrides and args.store not in _LSM_STORES:
        raise SystemExit(
            f"error: --compaction/--background tune the LSM family only "
            f"({', '.join(_LSM_STORES)}); store {args.store!r} has no "
            f"compaction pipeline"
        )
    return overrides


def _compaction_options(args):
    """Resolve compare's --compaction / --background / --compaction-config
    into (policies, background, stores, store_overrides).

    Explicit flags win over the config file.  ``stores`` is None when
    neither source named any (caller falls back to --stores)."""
    policies = list(args.compaction or [])
    background = bool(args.background)
    stores = None
    store_overrides: dict = {}
    if getattr(args, "compaction_config", None):
        import json

        with open(args.compaction_config, "r", encoding="utf-8") as handle:
            config = json.load(handle)
        unknown = set(config) - {"policies", "background", "stores",
                                 "store_overrides"}
        if unknown:
            raise SystemExit(
                f"error: unknown compaction-config keys: "
                f"{', '.join(sorted(unknown))} (expected policies, "
                f"background, stores, store_overrides)"
            )
        if not policies:
            policies = list(config.get("policies", []))
        if not background:
            background = bool(config.get("background", False))
        stores = config.get("stores")
        store_overrides = dict(config.get("store_overrides", {}))
    if not policies:
        policies = list(POLICY_NAMES)
    bad = [p for p in policies if p not in POLICY_NAMES]
    if bad:
        raise SystemExit(
            f"error: unknown compaction policies: {', '.join(bad)}; "
            f"expected one of {', '.join(POLICY_NAMES)}"
        )
    return policies, background, stores, store_overrides


def _recovery_rows(result) -> List[List]:
    rows = [
        ["store", result.store],
        ["crash at op", result.crash_at],
        ["operations (pre + resumed)", result.operations],
        ["recovery time (ms)", round(result.recovery_ms, 3)],
        ["WAL records replayed", result.wal_records_replayed],
        ["keys verified", result.keys_checked],
        ["mismatches", result.mismatches],
        ["recovered ok", "yes" if result.recovered_ok else "NO"],
        ["pre-crash throughput (kops)",
         round(result.pre_crash.throughput_ops / 1000.0, 1)],
        ["resumed throughput (kops)",
         round(result.resumed.throughput_ops / 1000.0, 1)],
    ]
    if result.disk_faults is not None:
        rows += [
            ["disk faults injected", result.disk_faults.faults_injected],
            ["corruptions detected", result.corruptions_detected],
            ["corruptions repaired", result.corruptions_repaired],
            ["scrub (ms)", round(result.scrub_ms or 0.0, 3)],
        ]
    return rows


def _check_pipeline_flags(args) -> None:
    """Reject --pipeline combinations before any replay starts."""
    if not args.pipeline or args.pipeline <= 1:
        return
    if args.batch and args.batch > 1:
        raise SystemExit(
            "error: --batch and --pipeline are alternative round-trip "
            "amortizations; pick one"
        )
    if getattr(args, "processes", False):
        raise SystemExit(
            "error: --pipeline requires threads; --processes workers "
            "replay synchronously"
        )
    if getattr(args, "crash_at", None) is not None:
        raise SystemExit(
            "error: --crash-at stops the replay at an exact op index; "
            "a pipelined window makes that point ambiguous -- drop "
            "--pipeline"
        )
    if getattr(args, "disk_faults", None):
        raise SystemExit(
            "error: disk-fault runs replay embedded stores synchronously; "
            "drop --pipeline"
        )


def _telemetry_options(args):
    """Resolve --trace / --metrics / --progress into a ReplayTelemetry
    (or None when no recording was requested)."""
    if not (args.trace_out or args.metrics or args.progress):
        return None
    from .obs import ReplayTelemetry

    return ReplayTelemetry(
        trace_path=args.trace_out,
        metrics_path=args.metrics,
        progress_stream=sys.stderr if args.progress else None,
        interval_ms=args.metrics_interval_ms,
        meta={
            "trace": args.trace,
            "batch": args.batch or 1,
            "pipeline": getattr(args, "pipeline", None) or 1,
        },
    )


def _sharded_row(args, result) -> EvaluationRow:
    """Evaluation row for a sharded replay: latency percentiles come
    from the merged per-shard populations, throughput from the
    fan-out's wall clock (slowest worker dominates)."""
    row = EvaluationRow.from_result(args.trace, result.merged_result())
    row.throughput_kops = result.summary()["throughput_kops"]
    row.store = f"{result.store}x{args.shards}"
    row.batch_size = args.batch or 1
    row.pipeline_depth = getattr(args, "pipeline", None) or 1
    row.timeseries_path = args.metrics
    return row


def _print_sharded_table(args, result, fault_plan, store_label) -> None:
    merged = result.merged_result()
    summary = result.summary()
    rows = [
        ["store", store_label],
        ["batch size", args.batch or 1],
        ["pipeline depth", getattr(args, "pipeline", None) or 1],
        ["operations", result.operations],
        ["aggregate throughput (kops)", round(summary["throughput_kops"], 1)],
        ["p50 (us)", round(summary["p50_us"], 1)],
        ["p99 (us)", round(summary["p99_us"], 1)],
        ["p99.9 (us)", round(summary["p99.9_us"], 1)],
    ] + _fault_rows(merged, fault_plan) + [
        [f"shard {index} ops", shard.operations]
        for index, shard in enumerate(result.shard_results)
    ]
    print(render_table(["metric", "value"], rows, title="sharded replay result"))


def cmd_replay(args) -> int:
    trace = AccessTrace.load(args.trace)
    _check_pipeline_flags(args)
    if _cluster_requested(args):
        return _replay_cluster(args, trace)
    if args.chaos:
        raise SystemExit(
            "error: --chaos needs a cluster (--cluster N or "
            "--cluster-config) to aim its kills at"
        )
    fault_plan, retry_policy = _fault_options(args)
    disk_plan = _disk_plan(args)
    telemetry = _telemetry_options(args)
    lsm_overrides = _lsm_overrides(args)
    if args.crash_at is not None:
        from .faults import RECOVERABLE_STORES, evaluate_crash_recovery

        if args.shards > 1 or args.processes:
            raise SystemExit(
                "error: --crash-at does not combine with --shards/--processes"
            )
        if args.metrics or args.progress:
            raise SystemExit(
                "error: --crash-at runs several replays (reference, doomed, "
                "resumed); only --trace records it, as one span timeline"
            )
        if args.store not in RECOVERABLE_STORES:
            print(
                f"error: store {args.store!r} does not support crash recovery "
                f"(no durable WAL + recover() path); recoverable stores: "
                f"{', '.join(RECOVERABLE_STORES)}",
                file=sys.stderr,
            )
            return 2
        from .obs import tracing as _tracing

        tracer = None
        if args.trace_out:
            tracer = _tracing.install(_tracing.SpanTracer())
        try:
            result = evaluate_crash_recovery(
                args.store, trace, args.crash_at,
                plan=fault_plan, retry_policy=retry_policy,
                service_rate=args.service_rate, disk_plan=disk_plan,
                batch_size=args.batch,
                store_config=lsm_overrides or None,
            )
        finally:
            if tracer is not None:
                _tracing.uninstall()
                tracer.export(args.trace_out)
        print(render_table(["metric", "value"], _recovery_rows(result),
                           title="crash-recovery result"))
        recovery_row = EvaluationRow.from_recovery(args.trace, result)
        recovery_row.batch_size = args.batch or 1
        _lake_record(args, [recovery_row], fault_plan)
        return 0 if result.recovered_ok else 1
    if disk_plan is not None:
        raise SystemExit(
            "error: replay only uses --disk-faults together with "
            "--crash-at; use 'repro scrub' or 'repro compare' for "
            "disk-fault runs"
        )
    if args.processes:
        import shutil

        from .core import ConnectorSpec, ProcessShardedReplayer

        if args.trace_out or args.progress:
            raise SystemExit(
                "error: --processes supports --metrics only; span traces "
                "and the live progress view need in-process telemetry"
            )
        metrics_dir = f"{args.metrics}.shards" if args.metrics else None
        replayer = ProcessShardedReplayer(
            ConnectorSpec.for_store(
                args.store, storage_root=args.storage_root, **lsm_overrides
            ),
            num_workers=args.shards,
            service_rate=args.service_rate,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            batch_size=args.batch,
            metrics_dir=metrics_dir,
        )
        result = replayer.replay(trace)
        if args.metrics and replayer.last_metrics_path:
            shutil.copyfile(replayer.last_metrics_path, args.metrics)
        _print_sharded_table(
            args, result, fault_plan,
            f"{args.store} x{args.shards} processes",
        )
        _lake_record(args, [_sharded_row(args, result)], fault_plan)
        _telemetry_note(args)
        return 0
    if args.shards > 1:
        from .core import ShardedReplayer

        replayer = ShardedReplayer(
            lambda: create_connector(args.store, **lsm_overrides),
            num_workers=args.shards,
            service_rate=args.service_rate,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            batch_size=args.batch,
            pipeline_depth=args.pipeline,
            telemetry=telemetry,
        )
        result = replayer.replay(trace)
        replayer.close()
        _print_sharded_table(
            args, result, fault_plan, f"{args.store} x{args.shards} shards"
        )
        _lake_record(args, [_sharded_row(args, result)], fault_plan)
        _telemetry_note(args)
        return 0
    connector = create_connector(args.store, **lsm_overrides)
    replayer = TraceReplayer(
        connector, service_rate=args.service_rate,
        fault_plan=fault_plan, retry_policy=retry_policy,
        batch_size=args.batch, pipeline_depth=args.pipeline,
        telemetry=telemetry,
    )
    result = replayer.replay(trace)
    stall_rows: List[List] = []
    if args.background:
        store = getattr(connector, "store", None)
        stall_rows = [
            ["write stalls", getattr(store, "write_stall_count", 0)],
            ["stall time (ms)",
             round(getattr(store, "write_stall_ns", 0) / 1e6, 3)],
        ]
    connector.close()
    summary = result.summary()
    rows = [
        ["store", args.store],
        ["batch size", args.batch or 1],
        ["pipeline depth", args.pipeline or 1],
        ["operations", result.operations],
        ["throughput (kops)", round(summary["throughput_kops"], 1)],
        ["p50 (us)", round(summary["p50_us"], 1)],
        ["p99 (us)", round(summary["p99_us"], 1)],
        ["p99.9 (us)", round(summary["p99.9_us"], 1)],
    ] + stall_rows + _fault_rows(result, fault_plan)
    if args.compaction or args.background:
        rows.insert(1, ["compaction", f"{args.compaction or 'leveled'}"
                        f"{' (background)' if args.background else ''}"])
    print(render_table(["metric", "value"], rows, title="replay result"))
    lake_row = EvaluationRow.from_result(args.trace, result)
    lake_row.batch_size = args.batch or 1
    lake_row.pipeline_depth = args.pipeline or 1
    lake_row.compaction = args.compaction
    lake_row.timeseries_path = args.metrics
    if stall_rows:
        lake_row.write_stalls = stall_rows[0][1]
        lake_row.stall_ms = stall_rows[1][1]
    _lake_record(args, [lake_row], fault_plan)
    _telemetry_note(args)
    return 0


def _lake_record(args, rows, fault_plan=None) -> None:
    """Append finished evaluation rows to the ``--lake`` directory.

    Runs after every measurement closes, so recording history never
    shows up inside it."""
    if not getattr(args, "lake", None) or not rows:
        return
    from .lake import ResultsLake, append_rows, fault_plan_label, lake_path

    lake = ResultsLake(lake_path(args.lake))
    count = append_rows(lake, rows, fault_plan=fault_plan_label(fault_plan))
    print(f"appended {count} rows to lake {args.lake}")


def _telemetry_note(args) -> None:
    if args.trace_out:
        print(f"wrote span trace to {args.trace_out} "
              f"(load in Perfetto / chrome://tracing)")
    if args.metrics:
        print(f"wrote metrics time series to {args.metrics} "
              f"(inspect with 'repro metrics summarize')")


def _fault_rows(result, fault_plan) -> List[List]:
    if fault_plan is None:
        return []
    return [
        ["faults injected", result.injected_faults],
        ["retries", result.retries],
        ["failed ops", result.failed_ops],
    ]


def cmd_ycsb(args) -> int:
    from .ycsb import YCSBWorkload
    from .ycsb.properties import load_workload_file

    if args.properties:
        workload = load_workload_file(args.properties, seed=args.seed)
    else:
        workload = YCSBWorkload.core(
            args.preset,
            record_count=args.records,
            operation_count=args.operations,
            seed=args.seed,
        )
    trace = workload.generate()
    trace.save(args.output)
    comp = composition_of(trace)
    print(f"wrote {len(trace)} YCSB requests ({trace.distinct_keys()} keys) "
          f"to {args.output}")
    print(f"composition: get={comp.get:.3f} put={comp.put:.3f}")
    return 0


def cmd_compare(args) -> int:
    trace = AccessTrace.load(args.trace)
    _check_pipeline_flags(args)
    if _cluster_requested(args):
        return _compare_cluster(args, trace)
    if args.chaos:
        raise SystemExit(
            "error: --chaos needs a cluster (--cluster N or "
            "--cluster-config) to aim its kills at"
        )
    fault_plan, retry_policy = _fault_options(args)
    disk_plan = _disk_plan(args)
    evaluator = PerformanceEvaluator(
        stores=args.stores, fault_plan=fault_plan, retry_policy=retry_policy,
        lake_dir=args.lake,
    )
    wants_compaction = bool(args.compaction or args.compaction_config)
    if args.metrics and (args.crash_at is not None or disk_plan is not None
                         or wants_compaction):
        raise SystemExit(
            "error: --metrics records the performance comparison only; "
            "drop --crash-at/--disk-faults/--compaction or record those "
            "runs with 'repro replay --trace'"
        )
    if wants_compaction:
        if fault_plan is not None or args.crash_at is not None \
                or disk_plan is not None:
            raise SystemExit(
                "error: the --compaction sweep measures clean replays; "
                "drop --faults/--crash-at/--disk-faults"
            )
        if args.pipeline and args.pipeline > 1:
            raise SystemExit(
                "error: the --compaction sweep runs embedded LSM stores "
                "(no round trips to overlap); drop --pipeline"
            )
        return _compare_compaction(args, trace)
    if args.background:
        raise SystemExit(
            "error: --background needs --compaction (or "
            "--compaction-config) on compare; for a single background "
            "run use 'repro replay --background'"
        )
    if args.crash_at is not None:
        from .faults import RECOVERABLE_STORES

        recoverable = [s for s in args.stores if s in RECOVERABLE_STORES]
        skipped = [s for s in args.stores if s not in RECOVERABLE_STORES]
        if not recoverable:
            print(
                f"error: none of the requested stores "
                f"({', '.join(args.stores)}) support crash recovery "
                f"(no durable WAL + recover() path); recoverable stores: "
                f"{', '.join(RECOVERABLE_STORES)}",
                file=sys.stderr,
            )
            return 2
        if skipped:
            print(
                f"note: skipping {', '.join(skipped)}: no crash-recovery "
                f"support", file=sys.stderr,
            )
        recovery_rows = evaluator.evaluate_crash_recovery(
            args.trace, trace, args.crash_at,
            stores=recoverable, disk_plan=disk_plan,
            batch_size=args.batch,
        )
        if disk_plan is not None:
            rows = [
                [row.store, round(row.throughput_kops, 1),
                 round(row.recovery_ms or 0.0, 3), row.wal_replayed,
                 row.corruptions_detected, row.corruptions_repaired,
                 "yes" if row.recovered_ok else "NO"]
                for row in recovery_rows
            ]
            print(render_table(
                ["store", "kops", "recovery ms", "wal replayed",
                 "corrupt found", "repaired", "recovered"],
                rows, title=f"crash-recovery comparison on {args.trace} "
                f"(crash at op {args.crash_at}, with disk faults)"))
        else:
            rows = [
                [row.store, round(row.throughput_kops, 1),
                 round(row.recovery_ms or 0.0, 3), row.wal_replayed,
                 "yes" if row.recovered_ok else "NO"]
                for row in recovery_rows
            ]
            print(render_table(
                ["store", "kops", "recovery ms", "wal replayed", "recovered"],
                rows, title=f"crash-recovery comparison on {args.trace} "
                f"(crash at op {args.crash_at})"))
        return 0 if all(row.recovered_ok for row in recovery_rows) else 1
    if disk_plan is not None:
        integrity_rows = evaluator.evaluate_integrity(
            args.trace, trace, disk_plan
        )
        rows = [
            [row.store, round(row.throughput_kops, 1),
             row.corruptions_detected, row.corruptions_repaired,
             row.corruptions_unrecoverable, round(row.scrub_ms or 0.0, 3)]
            for row in integrity_rows
        ]
        print(render_table(
            ["store", "kops", "corrupt found", "repaired", "unrecoverable",
             "scrub ms"],
            rows, title=f"integrity comparison on {args.trace} "
            f"(seeded disk faults, seed {disk_plan.seed})"))
        best = max(rows, key=lambda r: (r[2], r[3]))
        print(f"most corruption detected: {best[0]}")
        return 0
    results = evaluator.evaluate(
        args.trace, trace, batch_size=args.batch,
        pipeline_depth=args.pipeline,
        metrics_dir=args.metrics, metrics_interval_ms=args.metrics_interval_ms,
    )
    if fault_plan is not None:
        rows = [
            [row.store, row.batch_size, row.pipeline_depth,
             round(row.throughput_kops, 1),
             round(row.p50_us, 1), round(row.p999_us, 1),
             row.injected_faults, row.retries, row.failed_ops]
            for row in results
        ]
        print(render_table(
            ["store", "batch", "pipe", "kops", "p50 us", "p99.9 us",
             "faults", "retries", "failed"],
            rows, title=f"faulted store comparison on {args.trace}"))
    else:
        rows = [
            [row.store, row.batch_size, row.pipeline_depth,
             round(row.throughput_kops, 1),
             round(row.p50_us, 1), round(row.p999_us, 1)]
            for row in results
        ]
        print(render_table(
            ["store", "batch", "pipe", "kops", "p50 us", "p99.9 us"],
            rows, title=f"store comparison on {args.trace}"))
    best = max(rows, key=lambda r: r[3])
    print(f"best throughput: {best[0]}")
    if args.metrics:
        paths = [row.timeseries_path for row in results if row.timeseries_path]
        print(f"wrote {len(paths)} metrics time series under {args.metrics} "
              f"(compare two with 'repro metrics diff')")
    return 0


def _compare_cluster(args, trace) -> int:
    """The ``compare --cluster`` axis: every backing store serves the
    same topology under the same (seeded) chaos schedule."""
    if args.faults or args.crash_at is not None or args.disk_faults:
        raise SystemExit(
            "error: cluster comparisons take fault injection from "
            "--chaos; --faults/--crash-at/--disk-faults are single-node "
            "axes"
        )
    if args.compaction or args.compaction_config or args.background:
        raise SystemExit(
            "error: --cluster does not combine with the compaction sweep"
        )
    if args.metrics:
        raise SystemExit(
            "error: record cluster metrics with 'repro replay --cluster "
            "--metrics FILE' (one fleet per file); compare --metrics "
            "covers single-node rows only"
        )
    config, chaos, policy = _cluster_settings(args, store=args.stores[0])
    evaluator = PerformanceEvaluator(stores=args.stores, retry_policy=policy,
                                     lake_dir=args.lake)
    results = evaluator.evaluate_cluster(
        args.trace, trace,
        partitions=config.partitions, replicas=config.replicas,
        ack=config.ack, chaos=chaos, batch_size=args.batch,
        pipeline_depth=args.pipeline,
    )
    rows = [
        [row.store, row.cluster, round(row.throughput_kops, 1),
         round(row.p999_us, 1), row.failovers,
         round(row.replication_lag_ms or 0.0, 3),
         round(row.recovery_ms or 0.0, 3),
         "yes" if row.recovered_ok else "NO"]
        for row in results
    ]
    chaos_note = f", chaos seed {chaos.seed}" if chaos else ""
    print(render_table(
        ["store", "cluster", "kops", "p99.9 us", "failovers", "lag ms",
         "recovery ms", "recovered"],
        rows, title=f"cluster comparison on {args.trace}{chaos_note}"))
    return 0 if all(row.recovered_ok for row in results) else 1


def _compare_compaction(args, trace) -> int:
    """The ``compare --compaction`` axis: policy x LSM-store sweep,
    inline or under background maintenance workers."""
    from .faults import RECOVERABLE_STORES

    policies, background, stores, store_overrides = _compaction_options(args)
    store_names = list(stores or args.stores)
    lsm_stores = [s for s in store_names if s in RECOVERABLE_STORES]
    skipped = [s for s in store_names if s not in RECOVERABLE_STORES]
    if not lsm_stores:
        print(
            f"error: none of the requested stores "
            f"({', '.join(store_names)}) have a compaction pipeline; "
            f"LSM stores: {', '.join(RECOVERABLE_STORES)}",
            file=sys.stderr,
        )
        return 2
    if skipped:
        print(
            f"note: skipping {', '.join(skipped)}: no compaction "
            f"pipeline", file=sys.stderr,
        )
    evaluator = PerformanceEvaluator(
        stores=lsm_stores,
        store_configs=(
            {name: dict(store_overrides) for name in lsm_stores}
            if store_overrides else None
        ),
        lake_dir=args.lake,
    )
    results = evaluator.evaluate_compaction_axis(
        args.trace, trace, policies,
        background=background, batch_size=args.batch,
    )
    produced = {(row.store, row.compaction) for row in results}
    incompatible = [
        f"{store}+{policy}"
        for policy in policies for store in lsm_stores
        if (store, policy) not in produced
    ]
    if incompatible:
        print(
            f"note: skipping incompatible combinations: "
            f"{', '.join(incompatible)}", file=sys.stderr,
        )
    if background:
        rows = [
            [row.store, row.compaction, round(row.throughput_kops, 1),
             round(row.p50_us, 1), round(row.p999_us, 1),
             row.write_stalls or 0, row.stall_ms or 0.0]
            for row in results
        ]
        headers = ["store", "policy", "kops", "p50 us", "p99.9 us",
                   "stalls", "stall ms"]
    else:
        rows = [
            [row.store, row.compaction, round(row.throughput_kops, 1),
             round(row.p50_us, 1), round(row.p999_us, 1)]
            for row in results
        ]
        headers = ["store", "policy", "kops", "p50 us", "p99.9 us"]
    mode = "background" if background else "inline"
    print(render_table(
        headers, rows,
        title=f"compaction-policy comparison on {args.trace} "
        f"({mode} maintenance)"))
    best = max(rows, key=lambda r: r[2])
    print(f"best throughput: {best[0]} with {best[1]}")
    return 0


def _series_from_lake(args) -> List[str]:
    """Resolve ``metrics diff --lake/--query`` into recorded series
    paths: the non-null ``timeseries_path`` of matching runs, in run
    order (so the oldest matching run is the baseline)."""
    from .lake import LakeError, QueryError, ResultsLake, lake_path
    from .lake.query import parse_query, select_rows

    try:
        lake = ResultsLake(lake_path(args.lake), create=False)
        query = parse_query(f"timeseries_path {args.query or ''}".strip())
        rows = select_rows(lake, query)
    except (OSError, LakeError, QueryError) as exc:
        raise SystemExit(f"error: {exc}")
    order = sorted(
        range(len(rows["run_id"])),
        key=lambda i: (rows["run_id"][i] is None, rows["run_id"][i]),
    )
    paths: List[str] = []
    for index in order:
        path = rows["timeseries_path"][index]
        if path and path not in paths:
            paths.append(path)
    return paths


def cmd_metrics(args) -> int:
    from .obs import (
        diff_matrix,
        diff_series,
        format_diff,
        format_matrix,
        format_summary,
        summarize_series,
    )

    if args.metrics_command == "summarize":
        for index, path in enumerate(args.series):
            if index:
                print()
            print(format_summary(summarize_series(path)))
        return 0
    if args.metrics_command == "diff":
        paths = list(args.series)
        if args.lake or args.query is not None:
            if not args.lake:
                raise SystemExit(
                    "error: --query resolves series from a lake; add "
                    "--lake DIR"
                )
            paths += _series_from_lake(args)
        if len(paths) < 2:
            raise SystemExit(
                "error: metrics diff needs at least two series (paths "
                "and/or a --lake query resolving to recorded runs)"
            )
        if len(paths) == 2:
            print(format_diff(diff_series(paths[0], paths[1], bins=args.bins)))
        else:
            print(format_matrix(diff_matrix(paths, bins=args.bins)))
        return 0
    raise SystemExit(f"error: unknown metrics command {args.metrics_command!r}")


#: set (to anything) to turn regress findings into a warning instead of
#: a failing exit -- the CI waiver for understood trajectory shifts
REGRESS_WAIVER_ENV = "REPRO_LAKE_WAIVE"


def cmd_lake(args) -> int:
    from .lake import (
        LakeError,
        QueryError,
        RegressConfig,
        ResultsLake,
        detect_regressions,
        format_query_result,
        format_regress_report,
        import_paths,
        lake_path,
        run_query,
    )

    path = lake_path(args.lake)
    try:
        if args.lake_command == "import":
            lake = ResultsLake(path)
            for file_path, kind, rows in import_paths(lake, args.files):
                print(f"{file_path}: {kind}, {rows} rows")
            tables = ", ".join(
                f"{name}={lake.num_rows(name)}" for name in lake.tables()
            )
            print(f"lake {path}: {tables}")
            return 0
        if args.lake_command == "query":
            lake = ResultsLake(path, create=False)
            result = run_query(lake, args.query, table=args.table)
            print(format_query_result(result))
            return 0
        if args.lake_command == "verify":
            lake = ResultsLake(path, create=False)
            chunks = lake.verify()
            for name in lake.tables():
                print(f"{name}: {lake.num_rows(name)} rows in "
                      f"{len(lake.batches(name))} batches, "
                      f"{len(lake.columns(name))} columns")
            print(f"verified {chunks} column chunks")
            return 0
        if args.lake_command == "regress":
            import json

            data = {}
            if args.config:
                with open(args.config) as handle:
                    data = json.load(handle)
            for key in ("table", "window", "k", "min_runs", "rel_floor",
                        "metrics", "by"):
                value = getattr(args, key, None)
                if value is not None:
                    data[key] = value
            config = RegressConfig.from_dict(data)
            lake = ResultsLake(path, create=False)
            report = detect_regressions(lake, config)
            print(format_regress_report(report, config))
            if report.findings and os.environ.get(REGRESS_WAIVER_ENV):
                print(f"waived via {REGRESS_WAIVER_ENV}; not failing")
                return 0
            return 0 if report.ok else 1
    except (OSError, ValueError, LakeError, QueryError) as exc:
        raise SystemExit(f"error: {exc}")
    raise SystemExit(f"error: unknown lake command {args.lake_command!r}")


def cmd_scrub(args) -> int:
    """Replay a trace per store, optionally damage the on-disk state
    with a seeded plan, then scrub and report what was found."""
    from .kvstores import connect, create_store

    trace = AccessTrace.load(args.trace)
    disk_plan = _disk_plan(args)
    rows: List[List] = []
    dirty = False
    for store_name in args.stores:
        overrides = {}
        if args.checksum and store_name != "memory":
            overrides["checksum"] = args.checksum
        store = create_store(store_name, **overrides)
        connector = connect(store)
        TraceReplayer(connector, measure_latency=False).replay(trace)
        connector.flush()
        injected = 0
        backend = connector.storage_backend()
        if disk_plan is not None and backend is not None:
            injected = disk_plan.apply(backend).faults_injected
        report = connector.scrub()
        dirty = dirty or not report.clean
        rows.append([
            store_name,
            report.structures_checked,
            injected,
            report.corruptions_detected,
            report.corruptions_repaired,
            report.unrecoverable,
            round(report.scrub_ms, 3),
        ])
        connector.close()
    print(render_table(
        ["store", "structures", "injected", "detected", "repaired",
         "unrecoverable", "scrub ms"],
        rows, title=f"scrub of {args.trace}"
        + (f" (disk faults, seed {disk_plan.seed})" if disk_plan else "")))
    return 2 if dirty else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gadget: benchmark harness for streaming state stores",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("workloads", help="list predefined workloads")

    generate = subparsers.add_parser("generate", help="generate a state access trace")
    generate.add_argument("-w", "--workload", choices=sorted(WORKLOADS))
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--config", help="JSON configuration file "
                          "(overrides the other generation options)")
    generate.add_argument("--dataset", default="synthetic",
                          choices=["synthetic", "borg", "taxi", "azure"])
    generate.add_argument("--events", type=int, default=20_000)
    generate.add_argument("--keys", type=int, default=1_000)
    generate.add_argument("--key-dist", default="zipfian")
    generate.add_argument("--watermark-frequency", type=int, default=100)
    generate.add_argument("--seed", type=int, default=42)

    analyze = subparsers.add_parser("analyze", help="characterize a trace")
    analyze.add_argument("trace")
    analyze.add_argument("--target-hit-ratio", type=float, default=0.9)

    def add_fault_options(sub) -> None:
        sub.add_argument(
            "--faults", metavar="CONFIG",
            help="JSON fault plan (seeded transient errors, latency "
            "spikes, stalls) injected into the replay",
        )
        sub.add_argument(
            "--crash-at", type=_positive_int, default=None, metavar="OP",
            help="kill the store before op OP, run recover(), resume, and "
            "verify contents against an uninterrupted run (LSM-family "
            "stores only)",
        )
        sub.add_argument(
            "--disk-faults", metavar="CONFIG",
            help="JSON disk-fault plan (seeded bit flips, torn writes, "
            "lost writes) applied to the on-disk state; with compare it "
            "runs the integrity comparison, with --crash-at it damages "
            "the surviving storage before recovery",
        )
        sub.add_argument(
            "--no-retry", action="store_true",
            help="disable the retry policy (injected transient errors "
            "then count as failed ops)",
        )
        sub.add_argument(
            "--retry-attempts", type=_positive_int, default=4,
            help="max attempts per operation under faults (default: 4)",
        )

    def add_lake_option(sub) -> None:
        sub.add_argument(
            "--lake", metavar="DIR", default=None,
            help="append this run's evaluation rows to the columnar "
            "results lake in DIR (query with 'repro lake query', gate "
            "with 'repro lake regress')",
        )

    def add_metrics_interval(sub) -> None:
        sub.add_argument(
            "--metrics-interval-ms", type=float, default=100.0,
            help="sampling period for --metrics and --progress "
            "(default: 100)",
        )

    def add_cluster_options(sub) -> None:
        sub.add_argument(
            "--cluster", type=_positive_int, default=None, metavar="N",
            help="serve the store from a cluster of N key partitions "
            "(crc32-partitioned, one replicated server chain each) "
            "instead of one embedded instance",
        )
        sub.add_argument(
            "--replicas", type=int, default=None, metavar="R",
            help="replicas behind each partition's primary "
            "(replication factor R+1; default: 1)",
        )
        sub.add_argument(
            "--ack", choices=("none", "one", "all"), default=None,
            help="replicas a write waits for before the client is acked "
            "(default: all -- the only level with zero acked-write loss "
            "on primary death)",
        )
        sub.add_argument(
            "--chaos", metavar="CONFIG", default=None,
            help="JSON cluster fault plan: kill/restart/isolate servers "
            "at logical-op offsets mid-replay (seeded, reproducible)",
        )
        sub.add_argument(
            "--cluster-config", metavar="FILE", default=None,
            help="JSON cluster topology config (partitions, replicas, "
            "ack, store, store_config); explicit flags win",
        )

    replay = subparsers.add_parser("replay", help="replay a trace on one store")
    replay.add_argument("trace")
    replay.add_argument("--store", default="rocksdb", choices=STORE_NAMES)
    replay.add_argument("--service-rate", type=float, default=None)
    replay.add_argument(
        "--shards", type=_positive_int, default=1,
        help="hash-partition the trace by key across N worker threads, "
        "one store instance per worker (default: 1, single-threaded)",
    )
    replay.add_argument(
        "--processes", action="store_true",
        help="run the --shards workers as separate OS processes over a "
        "shared-memory view of the trace: true parallelism past the "
        "GIL, identical partitioning and fault schedules to thread "
        "mode (histogram populations and store contents match)",
    )
    replay.add_argument(
        "--storage-root", metavar="DIR", default=None,
        help="with --processes, back each worker's store with its own "
        "on-disk partition under DIR/shard-N (disk-backed stores only)",
    )
    replay.add_argument(
        "--batch", type=_positive_int, default=None, metavar="N",
        help="micro-batch up to N consecutive same-kind ops into one "
        "multi_get/apply_batch call (default: per-op); per-op latency "
        "stays honest -- measured from each op's arrival, queueing "
        "included",
    )
    replay.add_argument(
        "--pipeline", type=_positive_int, default=None, metavar="N",
        help="keep up to N ops in flight per connection instead of "
        "blocking on each round trip (remote and cluster stores; "
        "embedded stores run synchronously); per-op latency stays "
        "honest -- measured from each op's arrival, window queueing "
        "included; mutually exclusive with --batch",
    )
    replay.add_argument(
        "--trace-out", "--trace", dest="trace_out", metavar="FILE",
        default=None,
        help="record internal spans (flushes, compactions, WAL commits, "
        "page IO, RPCs, retries) to a Chrome trace-event JSON file, "
        "loadable in Perfetto",
    )
    replay.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="sample store gauges plus interval throughput and latency "
        "percentiles into a JSONL time series for 'repro metrics'",
    )
    replay.add_argument(
        "--progress", action="store_true",
        help="live single-line progress view on stderr (ops/s, p99, "
        "compactions, cache hit rate, faults)",
    )
    replay.add_argument(
        "--compaction", default=None, choices=POLICY_NAMES,
        help="compaction policy for the LSM store (rocksdb/lethe only; "
        "default: leveled)",
    )
    replay.add_argument(
        "--background", action="store_true",
        help="move LSM flush and compaction to background workers with "
        "write-stall backpressure instead of running them inline on the "
        "write path (rocksdb/lethe only)",
    )
    add_metrics_interval(replay)
    add_fault_options(replay)
    add_cluster_options(replay)
    add_lake_option(replay)

    compare = subparsers.add_parser("compare", help="replay on several stores")
    compare.add_argument("trace")
    compare.add_argument("--stores", nargs="+", default=list(DEFAULT_STORES),
                         choices=STORE_NAMES)
    compare.add_argument(
        "--batch", type=_positive_int, default=None, metavar="N",
        help="micro-batch up to N consecutive same-kind ops into one "
        "multi_get/apply_batch call on every store (default: per-op)",
    )
    compare.add_argument(
        "--pipeline", type=_positive_int, default=None, metavar="N",
        help="keep up to N ops in flight per connection on every store "
        "(remote and cluster stores; embedded stores run "
        "synchronously); mutually exclusive with --batch",
    )
    compare.add_argument(
        "--metrics", metavar="DIR", default=None,
        help="sample each store's replay into DIR/<trace>-<store>.jsonl "
        "time series for 'repro metrics summarize|diff'",
    )
    compare.add_argument(
        "--compaction", nargs="+", default=None, choices=POLICY_NAMES,
        metavar="POLICY",
        help="sweep LSM compaction policies instead of stores: replay "
        "the trace once per policy on each LSM store "
        f"({', '.join(POLICY_NAMES)})",
    )
    compare.add_argument(
        "--background", action="store_true",
        help="run the compaction sweep under background maintenance "
        "workers (reports write-stall columns)",
    )
    compare.add_argument(
        "--compaction-config", metavar="FILE", default=None,
        help="JSON file for the compaction sweep with keys policies, "
        "background, stores, store_overrides (explicit flags win)",
    )
    add_metrics_interval(compare)
    add_fault_options(compare)
    add_cluster_options(compare)
    add_lake_option(compare)

    metrics = subparsers.add_parser(
        "metrics", help="report on recorded metrics time series"
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)
    summarize = metrics_sub.add_parser(
        "summarize", help="aggregate one or more series into run summaries"
    )
    summarize.add_argument("series", nargs="+", metavar="FILE")
    diff = metrics_sub.add_parser(
        "diff", help="align runs by replay progress; attribute the "
        "worst phase to the internal-activity series that diverged most "
        "(two runs: full phase table; more: comparison matrix against "
        "the first)"
    )
    diff.add_argument(
        "series", nargs="*", metavar="FILE",
        help="series files; the first is the baseline",
    )
    diff.add_argument(
        "--bins", type=_positive_int, default=10,
        help="number of progress-aligned phase bins (default: 10)",
    )
    diff.add_argument(
        "--lake", metavar="DIR", default=None,
        help="resolve additional series from the recorded "
        "timeseries_path of runs in this results lake",
    )
    diff.add_argument(
        "--query", metavar="FILTER", default=None,
        help="lake run filter in the query grammar, e.g. "
        "\"where store=rocksdb last 3\" (default: every recorded run)",
    )

    lake = subparsers.add_parser(
        "lake", help="columnar results lake: import artifacts, query "
        "history, gate on trajectory regressions"
    )
    lake_sub = lake.add_subparsers(dest="lake_command", required=True)

    def add_lake_location(sub) -> None:
        sub.add_argument(
            "--lake", metavar="DIR",
            default=os.environ.get("REPRO_LAKE", "."),
            help="lake directory or file (default: $REPRO_LAKE or .)",
        )

    lake_import = lake_sub.add_parser(
        "import", help="ingest artifacts: BENCH_*.json (stamped or "
        "legacy), metrics JSONL series, Chrome span traces"
    )
    lake_import.add_argument("files", nargs="+", metavar="FILE")
    add_lake_location(lake_import)
    lake_query = lake_sub.add_parser(
        "query", help="filtered group-by aggregation over recorded "
        "history, e.g. \"p99 by backend,batch_size,fault_plan last 50\""
    )
    lake_query.add_argument("query", metavar="QUERY")
    lake_query.add_argument(
        "--table", default="runs",
        choices=["runs", "series", "spans", "bench"],
        help="lake table to query (default: runs)",
    )
    add_lake_location(lake_query)
    lake_regress = lake_sub.add_parser(
        "regress", help="flag runs outside their group's recorded "
        "median +- k*MAD trajectory band (exit 1 on findings; set "
        f"{REGRESS_WAIVER_ENV} to waive)"
    )
    add_lake_location(lake_regress)
    lake_regress.add_argument(
        "--config", metavar="FILE", default=None,
        help="JSON regress settings (see configs/lake.json); explicit "
        "flags win",
    )
    lake_regress.add_argument(
        "--table", default=None,
        choices=["runs", "series", "spans", "bench"],
        help="lake table to gate (default: runs)",
    )
    lake_regress.add_argument(
        "--window", type=_positive_int, default=None,
        help="baseline runs fitted per group (default: 20)",
    )
    lake_regress.add_argument(
        "--k", type=float, default=None,
        help="band half-width in scaled-MAD units (default: 4.0)",
    )
    lake_regress.add_argument(
        "--min-runs", type=_positive_int, default=None, dest="min_runs",
        help="minimum baseline runs before a group is gated (default: 5)",
    )
    lake_regress.add_argument(
        "--rel-floor", type=float, default=None, dest="rel_floor",
        help="relative band floor as a fraction of the median "
        "(default: 0.05)",
    )
    lake_regress.add_argument(
        "--metrics", nargs="+", metavar="METRIC", default=None,
        help="metric columns to gate (default: throughput_kops p99_us)",
    )
    lake_regress.add_argument(
        "--by", nargs="+", metavar="COL", default=None,
        help="group axes (default: store workload batch_size "
        "pipeline_depth fault_plan)",
    )
    lake_verify = lake_sub.add_parser(
        "verify", help="re-checksum every column chunk and report "
        "per-table stats"
    )
    add_lake_location(lake_verify)

    scrub = subparsers.add_parser(
        "scrub", help="verify on-disk checksums after replaying a trace"
    )
    scrub.add_argument("trace")
    scrub.add_argument("--stores", nargs="+",
                       default=["rocksdb", "lethe", "faster", "berkeleydb"],
                       choices=STORE_NAMES)
    scrub.add_argument(
        "--disk-faults", metavar="CONFIG",
        help="JSON disk-fault plan applied before the scrub (to "
        "measure detection coverage)",
    )
    scrub.add_argument(
        "--checksum", default=None,
        choices=["none", "crc32", "crc32c", "default"],
        help="checksum algorithm the stores write with (default: "
        "crc32c when native, else crc32)",
    )

    ycsb = subparsers.add_parser(
        "ycsb", help="generate a YCSB trace (baseline comparison)"
    )
    ycsb.add_argument("-o", "--output", required=True)
    ycsb.add_argument("--preset", default="A", choices=list("ABCDEF"))
    ycsb.add_argument("--properties",
                      help="YCSB .properties workload file (overrides --preset)")
    ycsb.add_argument("--records", type=int, default=1000)
    ycsb.add_argument("--operations", type=int, default=100_000)
    ycsb.add_argument("--seed", type=int, default=42)
    return parser


_COMMANDS = {
    "workloads": cmd_workloads,
    "generate": cmd_generate,
    "analyze": cmd_analyze,
    "replay": cmd_replay,
    "compare": cmd_compare,
    "metrics": cmd_metrics,
    "lake": cmd_lake,
    "scrub": cmd_scrub,
    "ycsb": cmd_ycsb,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
