"""Bounded retries with exponential backoff and jitter.

:class:`RetryPolicy` is the single retry mechanism of the harness: the
replayer wraps connectors with :class:`RetryingConnector` to absorb
injected transient errors, and :class:`~repro.kvstores.remote.RemoteStoreClient`
uses the same policy to reconnect after socket timeouts.  Delays grow
exponentially (``base * multiplier**attempt``), are capped at
``max_delay_s``, and carry proportional jitter so synchronized clients
do not retry in lockstep.  A ``seed`` makes the jitter deterministic
for tests; an ``op_timeout_s`` bounds the total time (sleeps included)
one logical operation may consume before the last error is re-raised.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Tuple, Type

from ..obs import tracing
from .errors import TransientStoreError


@dataclass
class RetryPolicy:
    """Bounded exponential backoff with jitter and a per-op deadline."""

    max_attempts: int = 4
    base_delay_s: float = 0.002
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    #: fraction of the delay added/removed at random (0 disables)
    jitter: float = 0.25
    #: total wall-clock budget per operation, sleeps included
    op_timeout_s: Optional[float] = None
    #: seed for deterministic jitter (None -> nondeterministic)
    seed: Optional[int] = None
    #: exception types worth retrying
    retry_on: Tuple[Type[BaseException], ...] = (TransientStoreError,)
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self._rng = random.Random(self.seed)

    # -- delay schedule ------------------------------------------------------

    def base_delays(self) -> Iterator[float]:
        """Capped exponential delays, before jitter, one per retry."""
        delay = self.base_delay_s
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_delay_s)
            delay *= self.multiplier

    def _jittered(self, delay: float) -> float:
        if not self.jitter or not delay:
            return delay
        spread = delay * self.jitter
        return max(0.0, delay + self._rng.uniform(-spread, spread))

    # -- execution -----------------------------------------------------------

    def call(
        self,
        fn: Callable,
        *args,
        retry_on: Optional[Tuple[Type[BaseException], ...]] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ):
        """Invoke ``fn(*args)``, retrying on the configured errors.

        ``on_retry(attempt, error)`` fires before each backoff sleep;
        callers use it to count retries or reconnect a transport.
        Non-retryable exceptions propagate immediately; the final
        retryable error is re-raised once attempts or the per-op
        deadline are exhausted.
        """
        retryable = retry_on if retry_on is not None else self.retry_on
        deadline = (
            clock() + self.op_timeout_s if self.op_timeout_s is not None else None
        )
        delays = self.base_delays()
        attempt = 0
        while True:
            try:
                return fn(*args)
            except retryable as error:
                attempt += 1
                try:
                    delay = self._jittered(next(delays))
                except StopIteration:
                    raise error
                if deadline is not None and clock() + delay > deadline:
                    raise error
                if on_retry is not None:
                    on_retry(attempt, error)
                if delay:
                    sleep(delay)


class RetryingConnector:
    """Connector facade that retries each operation under a policy.

    Wraps any connector-shaped object (including
    :class:`~repro.faults.injector.FaultInjectingConnector` and
    :class:`~repro.kvstores.remote.RemoteStoreClient`) and counts the
    retries and give-ups it performed, so replay results can report
    how hard the store had to be driven to get through the fault
    schedule.
    """

    def __init__(
        self,
        inner,
        policy: RetryPolicy,
        retry_on: Optional[Tuple[Type[BaseException], ...]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._inner = inner
        self._policy = policy
        self._retry_on = retry_on
        self._sleep = sleep
        self.retries = 0
        self.giveups = 0
        self.name = inner.name

    @property
    def inner(self):
        return self._inner

    def _call(self, fn, *args):
        def count(attempt: int, error: BaseException) -> None:
            self.retries += 1
            tracing.instant(
                "retry.attempt", attempt=attempt, error=type(error).__name__
            )

        try:
            return self._policy.call(
                fn, *args, retry_on=self._retry_on, sleep=self._sleep, on_retry=count
            )
        except BaseException:
            self.giveups += 1
            raise

    # -- connector API -------------------------------------------------------

    def get(self, key: bytes):
        return self._call(self._inner.get, key)

    def put(self, key: bytes, value: bytes) -> None:
        self._call(self._inner.put, key, value)

    def merge(self, key: bytes, operand: bytes) -> None:
        self._call(self._inner.merge, key, operand)

    def delete(self, key: bytes) -> None:
        self._call(self._inner.delete, key)

    def _call_batch(self, fn, arg):
        """Retry a resumable batch call with a per-member budget.

        A batch call re-raises for each faulting member in turn; under
        the plain :meth:`_call` the whole batch would share one
        ``max_attempts`` budget, so large batches would give up where
        per-op replay retries through.  Here the budget (attempts and
        per-op deadline) resets whenever the faulting member changes
        (identified by the error's ``op_index``), which makes batched
        fault tolerance identical to per-op replay.  Errors without an
        ``op_index`` (e.g. a remote transport failure) keep the shared
        whole-call budget.
        """
        policy = self._policy
        retryable = self._retry_on if self._retry_on is not None else policy.retry_on
        clock = time.monotonic
        member: object = None
        delays = None
        deadline: Optional[float] = None
        while True:
            try:
                return fn(arg)
            except retryable as error:
                error_member = getattr(error, "op_index", None)
                if delays is None or (
                    error_member is not None and error_member != member
                ):
                    member = error_member
                    delays = policy.base_delays()
                    deadline = (
                        clock() + policy.op_timeout_s
                        if policy.op_timeout_s is not None
                        else None
                    )
                try:
                    delay = policy._jittered(next(delays))
                except StopIteration:
                    self.giveups += 1
                    raise error
                if deadline is not None and clock() + delay > deadline:
                    self.giveups += 1
                    raise error
                self.retries += 1
                tracing.instant(
                    "retry.attempt",
                    member=error_member,
                    error=type(error).__name__,
                )
                if delay:
                    self._sleep(delay)

    def multi_get(self, keys):
        return self._call_batch(self._inner.multi_get, keys)

    def apply_batch(self, ops) -> None:
        self._call_batch(self._inner.apply_batch, ops)

    def take_background_ns(self) -> int:
        return self._inner.take_background_ns()

    def flush(self) -> None:
        self._inner.flush()

    def close(self) -> None:
        self._inner.close()

    def pipeline(self, depth: int, on_complete):
        """Pipelined session with per-submit retries.

        Injected faults fire at submit time (before the op enters the
        inner window -- see ``FaultInjectingConnector.pipeline``), so
        retrying ``submit`` under the policy never double-enqueues an
        op.  ``flush``/``drain`` pass through unguarded: a remote
        window's transport recovery already runs under the client's own
        retry policy, and nesting budgets would retry forever."""
        return _RetryingPipeline(self, self._inner.pipeline(depth, on_complete))


class _RetryingPipeline:
    """Retries each submit under the owner's policy, then delegates."""

    def __init__(self, retrier: RetryingConnector, inner) -> None:
        self._retrier = retrier
        self._inner = inner

    @property
    def depth(self) -> int:
        return self._inner.depth

    @property
    def pending(self) -> int:
        return self._inner.pending

    @property
    def flushes(self) -> int:
        return self._inner.flushes

    @property
    def coalesced_ops(self) -> int:
        return self._inner.coalesced_ops

    def submit(self, opcode: int, key: bytes, value: bytes,
               arrival_ns: int) -> None:
        self._retrier._call(self._inner.submit, opcode, key, value, arrival_ns)

    def flush(self) -> None:
        self._inner.flush()

    def drain(self) -> None:
        self._inner.drain()

    def close(self) -> None:
        self._inner.close()
