"""Deterministic, seeded fault plans.

A :class:`FaultPlan` describes *what* can go wrong during a replay --
transient errors, latency spikes, periodic stalls, and a crash point --
and compiles into a :class:`FaultSchedule` that decides, per operation
index, exactly which faults fire.  The schedule is a pure function of
the plan (all randomness flows from ``seed``), so two replays under the
same plan see byte-identical fault timelines.  That is the property the
evaluator leans on: every store in a comparison is subjected to the
*same* injected-fault schedule, making faulted rows comparable the way
the paper's happy-path rows are.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import asdict, dataclass, fields
from typing import Iterator, List, Optional, Union

from .cluster import ClusterFaultPlan
from .corruption import DiskFaultPlan


@dataclass(frozen=True)
class OpFaults:
    """Faults scheduled for one operation index."""

    #: fail the operation this many times before letting it through
    transient_errors: int = 0
    #: extra latency, in seconds, applied before the operation runs
    delay_s: float = 0.0
    #: the "process" dies immediately before this operation
    crash: bool = False

    @property
    def any(self) -> bool:
        return bool(self.transient_errors or self.delay_s or self.crash)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the faults to inject into a replay.

    Rates are per-operation probabilities; ``seed`` fixes every random
    draw, so the schedule is reproducible and identical across stores.
    """

    #: every random draw flows from this seed; sharded replays derive
    #: per-shard seeds (see :meth:`for_shard`), which is why the field
    #: also admits strings
    seed: Union[int, str] = 0
    #: probability that an operation draws a transient-error burst
    transient_error_rate: float = 0.0
    #: consecutive failures per burst (a retry policy must outlast this)
    error_burst: int = 1
    #: probability that an operation draws an injected latency spike
    latency_spike_rate: float = 0.0
    #: spike magnitude in milliseconds
    latency_spike_ms: float = 1.0
    #: every N operations, stall the whole pipeline (0 disables)
    stall_every: int = 0
    #: stall magnitude in milliseconds
    stall_ms: float = 0.0
    #: kill the store immediately before this operation index
    crash_at: Optional[int] = None
    #: disk-level damage (bit flips, torn/lost writes, disk full) to
    #: compose with the process-level faults above; accepts a nested
    #: dict in JSON configs
    disk: Optional[DiskFaultPlan] = None
    #: cluster topology events (kill/restart/isolate a store server) to
    #: fire during a cluster replay; accepts a nested dict in JSON
    cluster: Optional[ClusterFaultPlan] = None

    def __post_init__(self) -> None:
        if isinstance(self.disk, dict):
            object.__setattr__(self, "disk", DiskFaultPlan.from_dict(self.disk))
        if isinstance(self.cluster, dict):
            object.__setattr__(
                self, "cluster", ClusterFaultPlan.from_dict(self.cluster)
            )
        for name in ("transient_error_rate", "latency_spike_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.error_burst < 1:
            raise ValueError("error_burst must be >= 1")
        if self.stall_every < 0:
            raise ValueError("stall_every must be >= 0")
        if self.crash_at is not None and self.crash_at < 0:
            raise ValueError("crash_at must be >= 0")

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dict(cls, config: dict) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(config) - known
        if unknown:
            raise ValueError(
                f"unknown fault-plan keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**config)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan from a JSON config file."""
        with open(path, "r", encoding="utf-8") as handle:
            config = json.load(handle)
        if not isinstance(config, dict):
            raise ValueError(f"{path}: fault plan must be a JSON object")
        return cls.from_dict(config)

    def to_dict(self) -> dict:
        return asdict(self)

    # -- sharding ------------------------------------------------------------

    def for_shard(self, shard: int) -> "FaultPlan":
        """Per-shard plan with a deterministically derived seed.

        Sharded replays must not hand every worker the same schedule
        seed: each shard replays a *different* op subsequence, so
        "op 7 draws a spike" means a different logical operation in
        every shard, and (worse) any shared schedule state would make
        the draw order depend on thread interleaving.  Deriving
        ``Random(f"{seed}:shard{i}")`` -- the same idiom
        :class:`~repro.faults.corruption.DiskFaultPlan` uses per blob
        -- gives every shard its own reproducible timeline that is
        identical between thread-based and process-based replays of
        the same trace at the same shard count.

        ``crash_at`` does not shard (sharded replayers reject crash
        plans outright), disk plans already derive per-blob seeds, and
        cluster plans describe one shared topology, so all three carry
        over unchanged.
        """
        if shard < 0:
            raise ValueError("shard index must be >= 0")
        return dataclasses.replace(self, seed=f"{self.seed}:shard{shard}")

    # -- compilation ---------------------------------------------------------

    def schedule(self) -> "FaultSchedule":
        """Fresh schedule starting at operation index 0."""
        return FaultSchedule(self)

    def preview(self, num_ops: int) -> List[OpFaults]:
        """The first ``num_ops`` scheduled decisions (for inspection
        and determinism tests); does not disturb any live schedule."""
        schedule = self.schedule()
        return [schedule.next_op() for _ in range(num_ops)]


class FaultSchedule:
    """Streaming view of a plan's per-operation fault decisions.

    Decisions are drawn in operation order from ``Random(plan.seed)``,
    so the sequence is fully determined by the plan.  Retried
    operations must *not* advance the schedule -- the injector calls
    :meth:`next_op` once per logical operation.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._index = 0

    @property
    def index(self) -> int:
        """Index of the next logical operation."""
        return self._index

    def next_op(self) -> OpFaults:
        plan = self.plan
        index = self._index
        self._index = index + 1
        if plan.crash_at is not None and index == plan.crash_at:
            return OpFaults(crash=True)
        rng = self._rng
        transient = 0
        if plan.transient_error_rate and rng.random() < plan.transient_error_rate:
            transient = plan.error_burst
        delay_s = 0.0
        if plan.latency_spike_rate and rng.random() < plan.latency_spike_rate:
            delay_s += plan.latency_spike_ms / 1000.0
        if plan.stall_every and index and index % plan.stall_every == 0:
            delay_s += plan.stall_ms / 1000.0
        return OpFaults(transient_errors=transient, delay_s=delay_s)

    def __iter__(self) -> Iterator[OpFaults]:
        while True:
            yield self.next_op()


def load_fault_plan(path: str) -> FaultPlan:
    """Module-level convenience mirroring :meth:`FaultPlan.load`."""
    return FaultPlan.load(path)
