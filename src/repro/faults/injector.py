"""Fault-injecting connector wrapper.

:class:`FaultInjectingConnector` sits between a replayer and any store
connector (embedded or remote) and applies a :class:`~repro.faults.plan.FaultPlan`'s
schedule to the operation stream: transient errors surface as
:class:`~repro.faults.errors.TransientStoreError` *before* the inner
store is touched, latency spikes and stalls sleep on the calling
thread (they are part of the client-observed latency, like a GC pause
or a network hiccup would be), and the crash point raises
:class:`~repro.faults.errors.InjectedCrash`.

Retried operations do not advance the schedule: a burst of ``n``
transient errors fails the same logical operation ``n`` times, then the
operation executes for real.  This makes store contents after a faulted
replay (with a retry policy that outlasts the bursts) identical to an
un-faulted run -- the invariant the determinism tests pin down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from ..kvstores.connectors import StoreConnector
from .errors import InjectedCrash, TransientStoreError
from .plan import FaultPlan, FaultSchedule


@dataclass
class FaultStats:
    """What the injector actually fired during a replay."""

    transient_errors: int = 0
    latency_spikes: int = 0
    injected_delay_s: float = 0.0
    crashed_at: Optional[int] = None

    @property
    def total_faults(self) -> int:
        crashes = 1 if self.crashed_at is not None else 0
        return self.transient_errors + self.latency_spikes + crashes


class FaultInjectingConnector:
    """Applies a fault plan to every operation of an inner connector.

    Drop-in for :class:`~repro.kvstores.connectors.StoreConnector`;
    composes with :class:`~repro.faults.retry.RetryingConnector`
    (retry outside, faults inside) so retries re-execute the *faulted*
    operation rather than re-rolling the schedule.
    """

    def __init__(
        self,
        inner: StoreConnector,
        plan: Union[FaultPlan, FaultSchedule],
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._inner = inner
        self._schedule = plan.schedule() if isinstance(plan, FaultPlan) else plan
        self._sleep = sleep
        #: draw for the in-flight logical operation; retries of that
        #: operation re-enter the gate without advancing the schedule
        self._current = None
        self._errors_left = 0
        # Batch-gate state: one draw per batch member, cached across
        # retries of the same (failed) batch call.
        self._batch = None
        self._batch_errors: List[int] = []
        self._batch_skip: List[bool] = []
        self._batch_done = 0
        self._batch_base = 0
        self._batch_fault_at: Optional[int] = None
        self._batch_results: Optional[list] = None
        self.injected = FaultStats()
        self.name = inner.name

    @property
    def inner(self) -> StoreConnector:
        return self._inner

    def _gate(self) -> None:
        """Apply the faults owed to the current logical operation.

        The schedule advances exactly once per logical operation: the
        draw is cached until the gate lets the operation through, so a
        retry replays the *same* op's remaining burst instead of
        consuming the next op's faults (which would skew crash points
        and make schedules depend on retry behaviour).
        """
        faults = self._current
        if faults is None:
            faults = self._schedule.next_op()
            self._current = faults
            self._errors_left = faults.transient_errors
        op_index = self._schedule.index - 1
        if faults.crash:
            # A crashed process stays dead: every further call refails.
            self.injected.crashed_at = op_index
            raise InjectedCrash(op_index)
        if self._errors_left:
            self._errors_left -= 1
            self.injected.transient_errors += 1
            raise TransientStoreError(
                f"injected transient error (op {op_index})", op_index
            )
        if faults.delay_s:
            self.injected.latency_spikes += 1
            self.injected.injected_delay_s += faults.delay_s
            self._sleep(faults.delay_s)
        self._current = None

    def abandon_op(self) -> None:
        """The caller gave up on the current logical operation.

        Without this, the injector cannot tell "retry of the failed
        op" from "next op", and an unretried failure would make the
        next operation consume the failed op's leftover draw --
        shifting every later fault (and the crash point) by one.
        The guarded replay loop calls this whenever it counts a
        failed op and moves on.

        In batch context (a batch call raised), only the *faulty
        member* is abandoned: re-calling the same batch skips it and
        executes the remaining members, so a transient failure inside
        a batch costs exactly one logical op -- same as per-op replay.
        Returns the abandoned member's index within the batch (``None``
        outside batch context) so callers can exclude it from latency
        accounting.
        """
        if self._batch is not None:
            fault_at = self._batch_fault_at
            if fault_at is not None:
                self._batch_errors[fault_at] = 0
                self._batch_skip[fault_at] = True
                self._batch_fault_at = None
            return fault_at
        self._current = None
        self._errors_left = 0
        return None

    def _run_batch(self, count: int, execute: Callable[[int, int], None]) -> None:
        """Gate a batch of ``count`` logical ops through the schedule.

        Draws ``count`` entries from the schedule exactly once (cached
        across retries), executes maximal fault-free sub-batches via
        ``execute(i, j)`` (members ``[i, j)``), and raises at the first
        blocking fault so a crash at member ``k`` leaves exactly the
        members before ``k`` applied -- the same prefix semantics as
        per-op replay.  The call is resumable: after a
        :class:`TransientStoreError` the caller retries the *same*
        batch (already-executed members are not re-run) or calls
        :meth:`abandon_op` to skip the faulty member and then retries.
        """
        if self.injected.crashed_at is not None:
            # A crashed process stays dead: every further call refails.
            raise InjectedCrash(self.injected.crashed_at)
        draws = self._batch
        if draws is None:
            draws = [self._schedule.next_op() for _ in range(count)]
            self._batch = draws
            self._batch_errors = [d.transient_errors for d in draws]
            self._batch_skip = [False] * count
            self._batch_done = 0
            self._batch_base = self._schedule.index - count
            self._batch_fault_at = None
        elif len(draws) != count:
            raise RuntimeError(
                "batch retry must replay the same ops: got a batch of "
                f"{count} while {len(draws)} are in flight"
            )
        errors = self._batch_errors
        skip = self._batch_skip
        i = self._batch_done
        while i < count:
            if skip[i]:
                self._batch_done = i + 1
                i += 1
                continue
            j = i
            while j < count and not skip[j] and not draws[j].crash and not errors[j]:
                j += 1
            if j > i:
                delay = 0.0
                for k in range(i, j):
                    spike = draws[k].delay_s
                    if spike:
                        self.injected.latency_spikes += 1
                        self.injected.injected_delay_s += spike
                        delay += spike
                if delay:
                    self._sleep(delay)
                execute(i, j)
                self._batch_done = j
                i = j
                continue
            op_index = self._batch_base + i
            if draws[i].crash:
                self.injected.crashed_at = op_index
                raise InjectedCrash(op_index)
            errors[i] -= 1
            self.injected.transient_errors += 1
            self._batch_fault_at = i
            raise TransientStoreError(
                f"injected transient error (op {op_index})", op_index
            )
        self._batch = None
        self._batch_fault_at = None

    # -- connector API -------------------------------------------------------

    def get(self, key: bytes):
        self._gate()
        return self._inner.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self._gate()
        self._inner.put(key, value)

    def merge(self, key: bytes, operand: bytes) -> None:
        self._gate()
        self._inner.merge(key, operand)

    def delete(self, key: bytes) -> None:
        self._gate()
        self._inner.delete(key)

    def multi_get(self, keys: Sequence[bytes]):
        """Batched read under the fault schedule: each key is one
        logical op.  Results of members executed in an earlier faulted
        attempt are preserved across retries of the same batch."""
        fresh = self._batch is None
        if fresh or self._batch_results is None:
            self._batch_results = [None] * len(keys)
        results = self._batch_results

        def execute(i: int, j: int) -> None:
            results[i:j] = self._inner.multi_get(keys[i:j])

        self._run_batch(len(keys), execute)
        self._batch_results = None
        return results

    def apply_batch(self, ops: Sequence) -> None:
        """Batched write under the fault schedule: each op draws its
        own faults, and a crash at member ``k`` leaves exactly the
        members before ``k`` applied."""
        self._run_batch(
            len(ops), lambda i, j: self._inner.apply_batch(ops[i:j])
        )

    def take_background_ns(self) -> int:
        return self._inner.take_background_ns()

    def flush(self) -> None:
        self._inner.flush()

    def close(self) -> None:
        self._inner.close()

    def pipeline(self, depth: int, on_complete):
        """Pipelined session under the fault schedule.

        Each submit passes :meth:`_gate` (one schedule draw per logical
        op, cached across retries) *before* the op enters the inner
        window, so injected faults fire deterministically at the same
        logical offsets as synchronous replay.  ``flush``/``drain``
        delegate ungated: after a crash the replay loop still drains
        the inner window, so ops submitted before the crash point
        complete -- the same "everything before op k applied" prefix
        semantics a synchronous crash leaves behind."""
        return _FaultGatedPipeline(self, self._inner.pipeline(depth, on_complete))


class _FaultGatedPipeline:
    """Gates each submit through the fault schedule, then delegates."""

    def __init__(self, injector: FaultInjectingConnector, inner) -> None:
        self._injector = injector
        self._inner = inner

    @property
    def depth(self) -> int:
        return self._inner.depth

    @property
    def pending(self) -> int:
        return self._inner.pending

    @property
    def flushes(self) -> int:
        return self._inner.flushes

    @property
    def coalesced_ops(self) -> int:
        return self._inner.coalesced_ops

    def submit(self, opcode: int, key: bytes, value: bytes,
               arrival_ns: int) -> None:
        self._injector._gate()
        self._inner.submit(opcode, key, value, arrival_ns)

    def flush(self) -> None:
        self._inner.flush()

    def drain(self) -> None:
        self._inner.drain()

    def close(self) -> None:
        self._inner.close()
