"""Typed errors raised by the fault-injection layer.

Injected failures come in two flavours with very different contracts:

* :class:`TransientStoreError` models a *retryable* failure -- a store
  briefly refusing an operation (write stall, lock timeout, dropped
  packet).  A :class:`~repro.faults.retry.RetryPolicy` absorbs these.
* :class:`InjectedCrash` models *process death* at a planned operation
  index.  It must never be retried; the crash-recovery evaluator
  catches it, abandons the store object, and drives the store's
  ``recover()`` path on the surviving storage.
"""

from __future__ import annotations

from ..kvstores.api import KVStoreError


class FaultInjectionError(KVStoreError):
    """Base class for failures produced by the fault injector."""


class TransientStoreError(FaultInjectionError):
    """A retryable, injected failure of a single store operation.

    ``op_index`` (when known) is the schedule index of the logical
    operation that failed; batch-aware retry loops use it to grant a
    fresh retry budget per faulting batch member, keeping batched
    fault tolerance comparable to per-op replay.
    """

    def __init__(self, message: str, op_index=None) -> None:
        super().__init__(message)
        self.op_index = op_index


class InjectedCrash(FaultInjectionError):
    """The store "process" died at a planned crash point.

    Carries the zero-based index of the operation that was about to
    execute when the crash fired; that operation did *not* run.
    """

    def __init__(self, op_index: int) -> None:
        super().__init__(f"injected crash before operation {op_index}")
        self.op_index = op_index
