"""Fault injection and crash-recovery evaluation (the robustness axis).

The paper promises *robust* evaluation of streaming state stores; this
package supplies the machinery the happy-path harness lacks:

* :class:`FaultPlan` / :class:`FaultSchedule` -- deterministic, seeded
  schedules of transient errors, latency spikes, stalls, and crashes
* :class:`FaultInjectingConnector` -- applies a plan to any connector
* :class:`RetryPolicy` / :class:`RetryingConnector` -- bounded retries
  with exponential backoff + jitter and a per-op deadline
* :func:`evaluate_crash_recovery` -- kill an LSM-family store
  mid-replay, time ``recover()``, and verify contents against an
  uninterrupted run
"""

from .cluster import (
    CLUSTER_ACTIONS,
    ClusterAction,
    ClusterFaultPlan,
    load_cluster_fault_plan,
)
from .corruption import (
    CorruptingStorage,
    DiskFaultPlan,
    DiskFaultStats,
    DiskFullError,
    flip_bits,
    load_disk_fault_plan,
    tear_blob,
)
from .errors import FaultInjectionError, InjectedCrash, TransientStoreError
from .injector import FaultInjectingConnector, FaultStats
from .plan import FaultPlan, FaultSchedule, OpFaults, load_fault_plan
from .recovery import (
    RECOVERABLE_STORES,
    CrashRecoveryResult,
    check_recoverable,
    crash_recovery_matrix,
    evaluate_crash_recovery,
)
from .retry import RetryPolicy, RetryingConnector

__all__ = [
    "CLUSTER_ACTIONS",
    "ClusterAction",
    "ClusterFaultPlan",
    "CorruptingStorage",
    "CrashRecoveryResult",
    "DiskFaultPlan",
    "DiskFaultStats",
    "DiskFullError",
    "FaultInjectingConnector",
    "FaultInjectionError",
    "FaultPlan",
    "FaultSchedule",
    "FaultStats",
    "InjectedCrash",
    "OpFaults",
    "RECOVERABLE_STORES",
    "RetryPolicy",
    "RetryingConnector",
    "TransientStoreError",
    "check_recoverable",
    "crash_recovery_matrix",
    "evaluate_crash_recovery",
    "flip_bits",
    "load_cluster_fault_plan",
    "load_disk_fault_plan",
    "load_fault_plan",
    "tear_blob",
]
