"""Crash-recovery evaluation: kill a store mid-replay, recover, verify.

The harness's recovery experiment mirrors how fault-tolerance-aware
stream benchmarks (Karimov et al., ShuffleBench) treat failures as a
benchmark dimension rather than an afterthought:

1. replay the trace uninterrupted on a *reference* store instance,
2. replay the same trace on a fresh store over its own storage, with a
   planned :class:`~repro.faults.errors.InjectedCrash` at ``crash_at``
   (the store object is abandoned un-flushed and un-closed, like a
   process kill),
3. open a new store over the surviving storage, time ``recover()`` and
   count the WAL records it replays,
4. resume the remainder of the trace on the recovered store,
5. verify every key against the reference run.

Steps 3--5 produce the three recovery metrics the evaluator reports:
recovery time, WAL records replayed, and post-recovery correctness.
Only stores with durable storage and a ``recover()`` path participate
(the LSM family: ``rocksdb`` and ``lethe``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle with repro.core
    from ..core.replayer import ReplayResult

from ..kvstores.api import MergeOperator
from ..kvstores.connectors import StoreConnector, connect
from ..obs import tracing
from ..kvstores.lsm import LetheConfig, LetheStore, LSMConfig, RocksLSMStore
from ..kvstores.storage import MemoryStorage, Storage
from ..trace import AccessTrace
from .corruption import DiskFaultPlan, DiskFaultStats
from .plan import FaultPlan
from .retry import RetryPolicy

#: stores whose storage survives a crash and that implement recover()
RECOVERABLE_STORES = ("rocksdb", "lethe")

_BUILDERS = {
    "rocksdb": (RocksLSMStore, LSMConfig),
    "lethe": (LetheStore, LetheConfig),
}


def check_recoverable(store_name: str) -> None:
    """Raise a clear error for stores without a crash-recovery path.

    A store participates only if its storage survives a process kill
    *and* it implements ``recover()`` -- today the LSM family.  The
    in-memory store loses everything with the process and the B+Tree
    has no write-ahead log, so a crash-recovery run against them would
    be meaningless.
    """
    if store_name not in _BUILDERS:
        raise ValueError(
            f"store {store_name!r} does not support crash recovery "
            f"(no durable WAL + recover() path); "
            f"recoverable stores: {', '.join(RECOVERABLE_STORES)}"
        )


def _make_store(store_name: str, storage: Storage, merge_operator, overrides: dict):
    check_recoverable(store_name)
    store_cls, config_cls = _BUILDERS[store_name]
    return store_cls(config_cls(**overrides), merge_operator, storage=storage)


@dataclass
class CrashRecoveryResult:
    """Metrics from one kill-recover-verify experiment."""

    store: str
    crash_at: int
    #: operations executed across the pre-crash and resumed phases
    operations: int
    #: wall-clock seconds spent in ``recover()``
    recovery_s: float
    #: unflushed records rebuilt from the write-ahead log
    wal_records_replayed: int
    #: every key equal to the uninterrupted reference run
    recovered_ok: bool
    keys_checked: int
    mismatches: int
    pre_crash: ReplayResult
    resumed: ReplayResult
    #: disk faults injected into the surviving storage (None when the
    #: run had no disk-fault plan)
    disk_faults: Optional[DiskFaultStats] = None
    #: corruptions the revived store detected (recovery + scrub)
    corruptions_detected: int = 0
    #: of those, how many it repaired from redundant state
    corruptions_repaired: int = 0
    #: wall-clock milliseconds of the post-recovery scrub (None when
    #: the run had no disk-fault plan)
    scrub_ms: Optional[float] = None

    @property
    def recovery_ms(self) -> float:
        return self.recovery_s * 1000.0

    def summary(self) -> Dict[str, float]:
        return {
            "recovery_ms": self.recovery_ms,
            "wal_records_replayed": float(self.wal_records_replayed),
            "recovered_ok": float(self.recovered_ok),
            "mismatches": float(self.mismatches),
            "corruptions_detected": float(self.corruptions_detected),
            "corruptions_repaired": float(self.corruptions_repaired),
        }


def evaluate_crash_recovery(
    store_name: str,
    trace: AccessTrace,
    crash_at: int,
    *,
    plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    merge_operator: Optional[MergeOperator] = None,
    service_rate: Optional[float] = None,
    store_config: Optional[dict] = None,
    verify: bool = True,
    disk_plan: Optional[DiskFaultPlan] = None,
    batch_size: Optional[int] = None,
) -> CrashRecoveryResult:
    """Kill ``store_name`` at op ``crash_at``, recover, and verify.

    ``batch_size`` micro-batches the doomed and resumed replays (the
    reference run stays per-op, serving as the oracle): group-commit
    WAL frames must replay to the exact intact prefix, and a crash at
    member ``k`` of a batch must leave exactly the ops before ``k``
    applied -- this experiment proves both.

    An optional ``plan`` layers additional faults (transient errors,
    latency spikes) onto the pre-crash phase; its ``crash_at`` is
    overridden by this function's argument.  Content verification
    against the uninterrupted reference assumes acknowledged writes
    are not lost, so pair transient-error plans with a ``retry_policy``
    that outlasts their bursts.

    ``disk_plan`` (defaulting to ``plan.disk``) damages the surviving
    storage *between* the crash and the revival -- modelling the disk
    the process died on coming back corrupted.  The revived store then
    has to detect the damage (WAL truncation, checksum failures) and
    the result carries its corruption counters plus a post-recovery
    scrub time.
    """
    from ..core.replayer import TraceReplayer  # deferred: cycle with repro.core

    check_recoverable(store_name)
    if disk_plan is None and plan is not None:
        disk_plan = plan.disk
    if not 0 < crash_at < len(trace):
        raise ValueError(
            f"crash_at must fall inside the trace (0 < {crash_at} < {len(trace)})"
        )
    overrides = dict(store_config or {})

    # 1. Reference: uninterrupted run on its own storage.
    reference = connect(
        _make_store(store_name, MemoryStorage(), merge_operator, overrides),
        merge_operator,
    )
    with tracing.span("recovery.reference", ops=len(trace)):
        TraceReplayer(reference, measure_latency=False).replay(trace)

    # 2. Doomed run: planned crash; the store object is abandoned with
    #    whatever its storage holds (no flush, no close).
    storage = MemoryStorage()
    doomed = connect(
        _make_store(store_name, storage, merge_operator, overrides), merge_operator
    )
    crash_plan = replace(plan or FaultPlan(), crash_at=crash_at)
    with tracing.span("recovery.doomed", crash_at=crash_at):
        pre_crash = TraceReplayer(
            doomed,
            service_rate=service_rate,
            fault_plan=crash_plan,
            retry_policy=retry_policy,
            batch_size=batch_size,
        ).replay(trace)
    if pre_crash.crashed_at != crash_at:
        raise RuntimeError(
            f"crash fired at {pre_crash.crashed_at}, expected {crash_at}"
        )
    # Hard-stop like a process kill: background maintenance workers
    # abort at their next checkpoint instead of continuing to mutate
    # the storage the revived store is about to read.
    doomed.abandon()
    del doomed

    # 2.5. Damage the surviving storage before anyone reopens it.
    disk_faults: Optional[DiskFaultStats] = None
    if disk_plan is not None:
        with tracing.span("recovery.disk_faults"):
            disk_faults = disk_plan.apply(storage)

    # 3. Recovery: new store over the surviving storage.
    revived = _make_store(store_name, storage, merge_operator, overrides)
    with tracing.span("recovery.recover") as recovering:
        began = time.perf_counter()
        wal_records = revived.recover()
        recovery_s = time.perf_counter() - began
        recovering.add(wal_records=wal_records)

    # 3.5. Post-recovery scrub: surface any damage recovery missed.
    scrub_ms: Optional[float] = None
    if disk_plan is not None:
        with tracing.span("recovery.scrub"):
            scrub_ms = revived.scrub().scrub_ms

    # 4. Resume the rest of the trace on the recovered store.
    recovered = connect(revived, merge_operator)
    with tracing.span("recovery.resume", ops=len(trace) - crash_at):
        resumed = TraceReplayer(
            recovered, service_rate=service_rate, batch_size=batch_size
        ).replay(trace[crash_at:])

    # 5. Verify post-recovery contents against the reference.
    keys_checked = 0
    mismatches = 0
    if verify:
        with tracing.span("recovery.verify"):
            for key in trace.unique_keys():
                keys_checked += 1
                if recovered.get(key) != reference.get(key):
                    mismatches += 1
    reference.close()
    recovered.close()

    return CrashRecoveryResult(
        store=store_name,
        crash_at=crash_at,
        operations=pre_crash.operations + resumed.operations,
        recovery_s=recovery_s,
        wal_records_replayed=wal_records,
        recovered_ok=verify and mismatches == 0,
        keys_checked=keys_checked,
        mismatches=mismatches,
        pre_crash=pre_crash,
        resumed=resumed,
        disk_faults=disk_faults,
        corruptions_detected=revived.integrity.detected,
        corruptions_repaired=revived.integrity.repaired,
        scrub_ms=scrub_ms,
    )


def crash_recovery_matrix(
    trace: AccessTrace,
    crash_at: int,
    stores=RECOVERABLE_STORES,
    **kwargs,
):
    """Run :func:`evaluate_crash_recovery` for each recoverable store."""
    return [
        evaluate_crash_recovery(store_name, trace, crash_at, **kwargs)
        for store_name in stores
    ]
