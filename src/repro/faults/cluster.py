"""Cluster-level fault actions: the chaos side of a fault plan.

Single-node plans (:mod:`repro.faults.plan`) perturb one connector --
transient errors, latency, a crash point.  A :class:`ClusterFaultPlan`
instead schedules *topology* events against a running store cluster:
kill a named server at a logical-op offset, restart it later as a
replacement node, or partition the client away from one endpoint.  Like
every other plan in this package the schedule is a pure function of the
plan (all randomness flows from ``seed``), so two replays under the
same plan kill the same servers at the same op offsets.

Targets come in two forms:

* a concrete node name (``"p0r1"`` -- partition 0, chain position 1),
  resolved against the cluster's node table, or
* a role selector (``"primary:2"`` / ``"replica:2"``), resolved at fire
  time against partition 2's *current* chain -- after a failover the
  primary is whatever the client promoted, which is exactly what a
  chaos test wants to kill next.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, fields
from typing import List, Optional, Tuple, Union

#: actions a plan may schedule
CLUSTER_ACTIONS = ("kill", "restart", "isolate", "heal")


@dataclass(frozen=True)
class ClusterAction:
    """One scheduled topology event.

    ``at`` is a logical-operation offset: the action fires immediately
    before the ``at``-th operation (batches count one op per member)
    reaches the cluster.
    """

    #: fire immediately before this logical operation index
    at: int
    #: one of :data:`CLUSTER_ACTIONS`
    action: str
    #: node name ("p0r1") or role selector ("primary:0" / "replica:0")
    target: str

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"action offset must be >= 0, got {self.at}")
        if self.action not in CLUSTER_ACTIONS:
            raise ValueError(
                f"unknown cluster action {self.action!r}; "
                f"expected one of {CLUSTER_ACTIONS}"
            )
        if not self.target:
            raise ValueError("cluster action needs a target")

    @classmethod
    def from_dict(cls, config: dict) -> "ClusterAction":
        known = {f.name for f in fields(cls)}
        unknown = set(config) - known
        if unknown:
            raise ValueError(
                f"unknown cluster-action keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**config)


@dataclass(frozen=True)
class ClusterFaultPlan:
    """Seeded schedule of kill/restart/isolate events for a cluster.

    Explicit ``actions`` express scripted scenarios ("kill replica:0 at
    op 500, then primary:1 at op 1500"); ``random_kills`` adds seeded
    surprise kills inside ``kill_window`` for property tests, each
    optionally followed by a restart ``restart_after`` ops later.
    """

    #: every random draw flows from this seed (string seeds compose
    #: with the ``f"{seed}:cluster"`` derivation like per-shard plans)
    seed: Union[int, str] = 0
    #: explicit scripted actions; accepts a list of dicts in JSON
    actions: Tuple[ClusterAction, ...] = ()
    #: number of additional seeded random kills to schedule
    random_kills: int = 0
    #: (lo, hi) op-offset window for random kills; None means the
    #: middle half of the trace, resolved at schedule time
    kill_window: Optional[Tuple[int, int]] = None
    #: restart each random kill's victim this many ops after the kill
    #: (0 disables restarts)
    restart_after: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.actions, (list, tuple)):
            coerced = tuple(
                ClusterAction.from_dict(a) if isinstance(a, dict) else a
                for a in self.actions
            )
            object.__setattr__(self, "actions", coerced)
        if self.kill_window is not None:
            window = tuple(self.kill_window)
            if len(window) != 2 or window[0] < 0 or window[1] <= window[0]:
                raise ValueError(
                    f"kill_window must be (lo, hi) with 0 <= lo < hi, "
                    f"got {self.kill_window!r}"
                )
            object.__setattr__(self, "kill_window", window)
        if self.random_kills < 0:
            raise ValueError("random_kills must be >= 0")
        if self.restart_after < 0:
            raise ValueError("restart_after must be >= 0")

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dict(cls, config: dict) -> "ClusterFaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(config) - known
        if unknown:
            raise ValueError(
                f"unknown cluster-fault-plan keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**config)

    @classmethod
    def load(cls, path: str) -> "ClusterFaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            config = json.load(handle)
        if not isinstance(config, dict):
            raise ValueError(f"{path}: cluster fault plan must be a JSON object")
        return cls.from_dict(config)

    def to_dict(self) -> dict:
        return asdict(self)

    # -- compilation ---------------------------------------------------------

    def schedule(self, partitions: int, num_ops: int) -> List[ClusterAction]:
        """Materialize the full action list for one replay.

        Scripted actions carry over verbatim; random kills draw offset,
        partition, and role from ``Random(f"{seed}:cluster")`` -- the
        same seed-derivation idiom per-shard and per-blob plans use --
        so the schedule is identical across runs of the same plan.
        The result is sorted by offset, ready for an executor.
        """
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        out: List[ClusterAction] = list(self.actions)
        if self.random_kills:
            rng = random.Random(f"{self.seed}:cluster")
            lo, hi = self.kill_window or (num_ops // 4, max(1, (3 * num_ops) // 4))
            hi = max(hi, lo + 1)
            for _ in range(self.random_kills):
                at = rng.randrange(lo, hi)
                partition = rng.randrange(partitions)
                role = "replica" if rng.random() < 0.5 else "primary"
                target = f"{role}:{partition}"
                out.append(ClusterAction(at=at, action="kill", target=target))
                if self.restart_after:
                    out.append(
                        ClusterAction(
                            at=at + self.restart_after,
                            action="restart",
                            target=target,
                        )
                    )
        out.sort(key=lambda action: action.at)
        return out


def load_cluster_fault_plan(path: str) -> ClusterFaultPlan:
    """Module-level convenience mirroring :meth:`ClusterFaultPlan.load`."""
    return ClusterFaultPlan.load(path)
