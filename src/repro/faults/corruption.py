"""Deterministic disk-fault injection at the storage layer.

The fault plans in :mod:`repro.faults.plan` model *process*-level
trouble (errors, latency, crashes).  This module models the disk
itself misbehaving, the failure class the storage-integrity subsystem
exists to catch:

* **bit flips** -- silent media corruption inside a blob
* **torn writes** -- a blob survives only as a prefix (power loss
  mid-write)
* **lost writes** -- a blob vanishes entirely (dropped by a caching
  layer that acked it)
* **disk full** -- writes start failing after a byte budget

A :class:`DiskFaultPlan` is seeded and *order-independent*: each blob's
fate is drawn from ``Random(f"{seed}:{blob_name}")``, so the same plan
applied to the same blob set damages exactly the same bytes no matter
the walk order or which store produced them.  Plans are applied either
post-hoc to a quiescent store's storage (:meth:`DiskFaultPlan.apply`,
modelling corruption at rest) or live through
:class:`CorruptingStorage` (modelling a failing write path).
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, fields
from fnmatch import fnmatch
from typing import Iterable, List, Optional, Tuple

from ..kvstores.storage import Storage, StorageError


class DiskFullError(StorageError):
    """Raised by :class:`CorruptingStorage` once the byte budget is spent."""


def flip_bits(data: bytes, rng: random.Random, bits: int) -> bytes:
    """Flip ``bits`` randomly chosen bits of ``data`` (empty-safe)."""
    if not data or bits <= 0:
        return data
    out = bytearray(data)
    for _ in range(bits):
        position = rng.randrange(len(out) * 8)
        out[position // 8] ^= 1 << (position % 8)
    return bytes(out)


def tear_blob(data: bytes, rng: random.Random) -> bytes:
    """Keep a random non-empty proper prefix of ``data`` (empty-safe)."""
    if len(data) < 2:
        return data
    return data[: rng.randrange(1, len(data))]


@dataclass
class DiskFaultStats:
    """What a :meth:`DiskFaultPlan.apply` walk actually damaged."""

    blobs_seen: int = 0
    blobs_matched: int = 0
    bit_flips: int = 0
    torn_writes: int = 0
    lost_writes: int = 0
    #: ``(blob_name, fault_kind)`` per injected fault, in walk order
    findings: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def faults_injected(self) -> int:
        return len(self.findings)

    def summary(self) -> dict:
        return {
            "blobs_seen": self.blobs_seen,
            "blobs_matched": self.blobs_matched,
            "bit_flips": self.bit_flips,
            "torn_writes": self.torn_writes,
            "lost_writes": self.lost_writes,
            "faults_injected": self.faults_injected,
        }


@dataclass(frozen=True)
class DiskFaultPlan:
    """Seeded description of disk-level damage.

    Rates are per-blob probabilities.  Each blob draws its fate from an
    RNG keyed on ``(seed, blob name)``, so the plan is reproducible and
    independent of application order.  At most one fault kind fires per
    blob, drawn in severity order: lost write, then torn write, then
    bit flips.
    """

    seed: int = 0
    #: probability a matched blob receives bit flips
    bit_flip_rate: float = 0.0
    #: bits flipped in an affected blob
    bits_per_flip: int = 1
    #: probability a matched blob is truncated to a random prefix
    torn_write_rate: float = 0.0
    #: probability a matched blob disappears entirely
    lost_write_rate: float = 0.0
    #: live writes fail with :class:`DiskFullError` after this many
    #: bytes (0 disables; only meaningful via :class:`CorruptingStorage`)
    disk_full_after_bytes: int = 0
    #: fnmatch globs selecting which blobs are eligible
    targets: Tuple[str, ...] = ("*",)

    def __post_init__(self) -> None:
        for name in ("bit_flip_rate", "torn_write_rate", "lost_write_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.bits_per_flip < 1:
            raise ValueError("bits_per_flip must be >= 1")
        if self.disk_full_after_bytes < 0:
            raise ValueError("disk_full_after_bytes must be >= 0")
        if isinstance(self.targets, list):
            object.__setattr__(self, "targets", tuple(self.targets))

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dict(cls, config: dict) -> "DiskFaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(config) - known
        if unknown:
            raise ValueError(
                f"unknown disk-fault-plan keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**config)

    @classmethod
    def load(cls, path: str) -> "DiskFaultPlan":
        """Read a plan from a JSON config file."""
        with open(path, "r", encoding="utf-8") as handle:
            config = json.load(handle)
        if not isinstance(config, dict):
            raise ValueError(f"{path}: disk-fault plan must be a JSON object")
        return cls.from_dict(config)

    def to_dict(self) -> dict:
        config = asdict(self)
        config["targets"] = list(config["targets"])
        return config

    # -- application ---------------------------------------------------------

    def matches(self, name: str) -> bool:
        return any(fnmatch(name, pattern) for pattern in self.targets)

    def _blob_rng(self, name: str) -> random.Random:
        return random.Random(f"{self.seed}:{name}")

    def fate(self, name: str) -> Optional[str]:
        """The fault kind this plan assigns to ``name`` (or ``None``).

        Pure function of ``(seed, name)`` -- used by tests to predict
        exactly which blobs :meth:`apply` will damage.
        """
        if not self.matches(name):
            return None
        rng = self._blob_rng(name)
        if rng.random() < self.lost_write_rate:
            return "lost_write"
        if rng.random() < self.torn_write_rate:
            return "torn_write"
        if rng.random() < self.bit_flip_rate:
            return "bit_flip"
        return None

    def damage(self, name: str, data: bytes) -> Tuple[Optional[str], Optional[bytes]]:
        """Apply this blob's fate to ``data``.

        Returns ``(fault_kind, new_bytes)``; ``(None, data)`` when the
        blob is spared and ``("lost_write", None)`` when it vanishes.
        """
        kind = self.fate(name)
        if kind is None:
            return None, data
        rng = self._blob_rng(name)
        rng.random()  # burn the fate draws so damage bytes are independent
        rng.random()
        rng.random()
        if kind == "lost_write":
            return kind, None
        if kind == "torn_write":
            return kind, tear_blob(data, rng)
        return kind, flip_bits(data, rng, self.bits_per_flip)

    def apply(self, storage: Storage, names: Optional[Iterable[str]] = None) -> DiskFaultStats:
        """Damage a quiescent storage in place; returns what was hit."""
        stats = DiskFaultStats()
        for name in sorted(names if names is not None else storage.list()):
            stats.blobs_seen += 1
            if not self.matches(name):
                continue
            stats.blobs_matched += 1
            kind, data = self.damage(name, storage.read(name))
            if kind is None:
                continue
            if data is None:
                storage.delete(name)
                stats.lost_writes += 1
            elif kind == "torn_write":
                storage.write(name, data)
                stats.torn_writes += 1
            else:
                storage.write(name, data)
                stats.bit_flips += 1
            stats.findings.append((name, kind))
        return stats


class CorruptingStorage(Storage):
    """Write-path wrapper injecting a :class:`DiskFaultPlan` live.

    Each ``write`` damages the outgoing bytes according to the blob's
    seeded fate (appends are left intact: the WAL's torn tail is
    modelled post-hoc by :meth:`DiskFaultPlan.apply`).  When the plan
    sets ``disk_full_after_bytes``, writes and appends raise
    :class:`DiskFullError` once the budget is spent, modelling ENOSPC.
    """

    def __init__(self, inner: Storage, plan: DiskFaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.stats = DiskFaultStats()
        self.bytes_written = 0

    def _charge(self, amount: int) -> None:
        budget = self.plan.disk_full_after_bytes
        if budget and self.bytes_written + amount > budget:
            raise DiskFullError(
                f"disk full: {self.bytes_written} bytes written of a "
                f"{budget}-byte budget"
            )
        self.bytes_written += amount

    def write(self, name: str, data: bytes) -> None:
        self._charge(len(data))
        self.stats.blobs_seen += 1
        if self.plan.matches(name):
            self.stats.blobs_matched += 1
            kind, damaged = self.plan.damage(name, data)
            if kind == "lost_write":
                self.stats.lost_writes += 1
                self.stats.findings.append((name, kind))
                return  # acked but never persisted
            if kind == "torn_write":
                self.stats.torn_writes += 1
                self.stats.findings.append((name, kind))
                data = damaged
            elif kind == "bit_flip":
                self.stats.bit_flips += 1
                self.stats.findings.append((name, kind))
                data = damaged
        self.inner.write(name, data)

    def append(self, name: str, data: bytes) -> None:
        self._charge(len(data))
        self.inner.append(name, data)

    def read(self, name: str) -> bytes:
        return self.inner.read(name)

    def read_range(self, name: str, offset: int, length: int) -> bytes:
        return self.inner.read_range(name, offset, length)

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def list(self) -> Iterable[str]:
        return self.inner.list()

    def size(self, name: str) -> int:
        return self.inner.size(name)


def load_disk_fault_plan(path: str) -> DiskFaultPlan:
    """Module-level convenience mirroring :meth:`DiskFaultPlan.load`."""
    return DiskFaultPlan.load(path)
