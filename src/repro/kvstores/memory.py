"""Plain hash-map store used as a correctness oracle in tests."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .api import (
    OP_DELETE,
    OP_MERGE,
    OP_PUT,
    AppendMergeOperator,
    KVStore,
    MergeOperator,
)


class InMemoryStore(KVStore):
    """Dict-backed store with eager merges.

    Not part of the paper's evaluation; it serves as the reference
    implementation that the LSM, B+Tree, and FASTER stores are checked
    against in differential and property-based tests.
    """

    name = "memory"

    def __init__(self, merge_operator: Optional[MergeOperator] = None) -> None:
        super().__init__()
        self._data: Dict[bytes, bytes] = {}
        self._merge_operator = merge_operator or AppendMergeOperator()

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        self.stats.gets += 1
        return self._data.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self.stats.puts += 1
        self._data[key] = value

    def delete(self, key: bytes) -> None:
        self._check_open()
        self.stats.deletes += 1
        self._data.pop(key, None)

    def merge(self, key: bytes, operand: bytes) -> None:
        self._check_open()
        self.stats.merges += 1
        existing = self._data.get(key)
        self._data[key] = self._merge_operator.full_merge(existing, (operand,))

    def multi_get(self, keys) -> List[Optional[bytes]]:
        self._check_open()
        self.stats.gets += len(keys)
        data = self._data
        return [data.get(key) for key in keys]

    def apply_batch(self, ops) -> None:
        self._check_open()
        stats = self.stats
        data = self._data
        full_merge = self._merge_operator.full_merge
        for opcode, key, value in ops:
            if opcode == OP_PUT:
                stats.puts += 1
                data[key] = value
            elif opcode == OP_MERGE:
                stats.merges += 1
                data[key] = full_merge(data.get(key), (value,))
            elif opcode == OP_DELETE:
                stats.deletes += 1
                data.pop(key, None)
            else:
                raise ValueError(
                    f"apply_batch is write-only; cannot apply opcode {opcode}"
                )

    def scan(self, start: bytes, end: bytes) -> Iterator[Tuple[bytes, bytes]]:
        self._check_open()
        for key in sorted(self._data):
            if start <= key < end:
                yield key, self._data[key]

    def __len__(self) -> int:
        return len(self._data)
