"""Storage-integrity primitives shared by every persistent engine.

Every byte the stores persist (WAL records, SSTable blocks, B+Tree
pages, FASTER hybrid-log segments) is covered by a per-structure
checksum so the harness can distinguish "store is slow" from "store
returned garbage".  Like RocksDB's ``ChecksumType``, the on-disk
formats carry a *checksum kind* byte rather than hard-coding one
algorithm:

* :attr:`ChecksumKind.CRC32C` -- the Castagnoli CRC used by RocksDB,
  Lethe, and FASTER.  Computed natively when the optional ``crc32c``
  package is installed, otherwise by a table-driven pure-Python
  fallback (correct but slow).
* :attr:`ChecksumKind.CRC32` -- zlib's C-accelerated CRC-32.  The
  default writer kind when no native CRC32C is available, so checksums
  never dominate the write path of a pure-Python harness.
* :attr:`ChecksumKind.NONE` -- writes the legacy v1 formats byte-for-
  byte (used for the v1 compatibility tests and by users who want
  checksums off).

Readers dispatch on the recorded kind, so files written under one
configuration are always readable under another.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, List, Optional
from zlib import crc32 as _zlib_crc32

from .api import KVStoreError


class CorruptionError(KVStoreError):
    """Persisted bytes failed a checksum or structural validation.

    Raised instead of ever deserializing (and silently returning)
    garbage.  Carries enough context to locate the damage.
    """

    def __init__(self, blob: str, offset: int, detail: str) -> None:
        super().__init__(f"corruption in {blob!r} at offset {offset}: {detail}")
        self.blob = blob
        self.offset = offset
        self.detail = detail


class ChecksumKind(IntEnum):
    """Checksum algorithm id stored in every checksummed format."""

    NONE = 0
    CRC32C = 1
    CRC32 = 2


# -- CRC32C (Castagnoli), table-driven pure-Python fallback ---------------

_CRC32C_POLY = 0x82F63B78


def _make_crc32c_table() -> List[int]:
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _CRC32C_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_CRC32C_TABLE = _make_crc32c_table()


def _crc32c_py(data: bytes, crc: int = 0) -> int:
    crc ^= 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


try:  # pragma: no cover - exercised only where the package exists
    from crc32c import crc32c as _crc32c_native  # type: ignore[import-not-found]

    def crc32c(data: bytes, crc: int = 0) -> int:
        return _crc32c_native(data, crc)

    HAVE_NATIVE_CRC32C = True
except ImportError:
    crc32c = _crc32c_py
    HAVE_NATIVE_CRC32C = False


#: the kind writers use unless configured otherwise: CRC32C when a
#: native implementation exists, else zlib's C-accelerated CRC-32
DEFAULT_CHECKSUM_KIND = (
    ChecksumKind.CRC32C if HAVE_NATIVE_CRC32C else ChecksumKind.CRC32
)

_CHECKSUM_FNS: dict = {
    ChecksumKind.CRC32C: crc32c,
    ChecksumKind.CRC32: _zlib_crc32,
}


def checksum(data: bytes, kind: ChecksumKind = DEFAULT_CHECKSUM_KIND) -> int:
    """32-bit checksum of ``data`` under ``kind`` (NONE returns 0)."""
    if kind is ChecksumKind.NONE:
        return 0
    try:
        fn: Callable[[bytes], int] = _CHECKSUM_FNS[ChecksumKind(kind)]
    except (KeyError, ValueError):
        raise ValueError(f"unknown checksum kind: {kind!r}") from None
    return fn(data) & 0xFFFFFFFF


def resolve_checksum_kind(name: Optional[str]) -> ChecksumKind:
    """Map a store-config string to a :class:`ChecksumKind`.

    ``None`` or ``"default"`` selects :data:`DEFAULT_CHECKSUM_KIND`;
    ``"none"`` disables checksums (legacy v1 formats).
    """
    if name is None or name == "default":
        return DEFAULT_CHECKSUM_KIND
    try:
        return ChecksumKind[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown checksum {name!r}; expected one of "
            f"{[k.name.lower() for k in ChecksumKind]} or 'default'"
        ) from None


# -- scrub reporting ------------------------------------------------------


@dataclass
class ScrubFinding:
    """One corrupt structure located by a scrub walk."""

    blob: str
    offset: int
    detail: str
    repaired: bool = False


@dataclass
class ScrubReport:
    """Outcome of walking a store's on-disk structures.

    ``corruptions_detected`` counts every structure that failed its
    checksum; of those, ``corruptions_repaired`` could be restored from
    redundant state (a clean in-memory page, a truncatable WAL tail)
    and ``unrecoverable`` could not.
    """

    structures_checked: int = 0
    corruptions_detected: int = 0
    corruptions_repaired: int = 0
    unrecoverable: int = 0
    elapsed_s: float = 0.0
    findings: List[ScrubFinding] = field(default_factory=list)

    @property
    def scrub_ms(self) -> float:
        return self.elapsed_s * 1000.0

    @property
    def clean(self) -> bool:
        return self.corruptions_detected == 0

    def merge(self, other: "ScrubReport") -> "ScrubReport":
        self.structures_checked += other.structures_checked
        self.corruptions_detected += other.corruptions_detected
        self.corruptions_repaired += other.corruptions_repaired
        self.unrecoverable += other.unrecoverable
        self.elapsed_s += other.elapsed_s
        self.findings.extend(other.findings)
        return self

    def add(self, finding: ScrubFinding) -> None:
        self.findings.append(finding)
        self.corruptions_detected += 1
        if finding.repaired:
            self.corruptions_repaired += 1
        else:
            self.unrecoverable += 1

    def summary(self) -> dict:
        return {
            "structures_checked": self.structures_checked,
            "corruptions_detected": self.corruptions_detected,
            "corruptions_repaired": self.corruptions_repaired,
            "unrecoverable": self.unrecoverable,
            "scrub_ms": self.scrub_ms,
        }


class timed_scrub:
    """Context manager stamping ``elapsed_s`` onto a report."""

    def __init__(self, report: ScrubReport) -> None:
        self.report = report

    def __enter__(self) -> ScrubReport:
        self._began = time.perf_counter()
        return self.report

    def __exit__(self, *exc_info) -> None:
        self.report.elapsed_s += time.perf_counter() - self._began


@dataclass
class IntegrityCounters:
    """Ambient corruption counters a store accumulates while running
    (recovery truncations, read-path detections, scrub results)."""

    detected: int = 0
    repaired: int = 0

    def absorb(self, report: ScrubReport) -> None:
        self.detected += report.corruptions_detected
        self.repaired += report.corruptions_repaired
