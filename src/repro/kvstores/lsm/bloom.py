"""Blocked-free simple Bloom filter for SSTable key membership tests."""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

from ..integrity import CorruptionError


class BloomFilter:
    """Classic Bloom filter with double hashing.

    Sized for a target bits-per-key budget (RocksDB defaults to 10,
    ~1% false-positive rate).  Serializable so SSTables can persist it.
    """

    def __init__(self, num_keys: int, bits_per_key: int = 10) -> None:
        num_keys = max(1, num_keys)
        self.num_bits = max(64, num_keys * max(0, bits_per_key))
        # bits_per_key <= 0 disables the filter: zero hash probes means
        # may_contain() always answers True (used by ablation studies).
        if bits_per_key <= 0:
            self.num_hashes = 0
        else:
            self.num_hashes = max(1, min(30, round(bits_per_key * math.log(2))))
        self._bits = bytearray((self.num_bits + 7) // 8)

    @staticmethod
    def _base_hashes(key: bytes) -> tuple:
        digest = hashlib.blake2b(key, digest_size=16).digest()
        return (
            int.from_bytes(digest[:8], "little"),
            int.from_bytes(digest[8:], "little") | 1,
        )

    def add(self, key: bytes) -> None:
        h1, h2 = self._base_hashes(key)
        for i in range(self.num_hashes):
            bit = (h1 + i * h2) % self.num_bits
            self._bits[bit >> 3] |= 1 << (bit & 7)

    def add_all(self, keys: Iterable[bytes]) -> None:
        for key in keys:
            self.add(key)

    def may_contain(self, key: bytes) -> bool:
        h1, h2 = self._base_hashes(key)
        for i in range(self.num_hashes):
            bit = (h1 + i * h2) % self.num_bits
            if not self._bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    # -- serialization ----------------------------------------------------

    def encode(self) -> bytes:
        header = self.num_bits.to_bytes(8, "little") + self.num_hashes.to_bytes(
            2, "little"
        )
        return header + bytes(self._bits)

    @classmethod
    def decode(cls, data: bytes) -> "BloomFilter":
        """Decode a filter, validating structural consistency.

        A truncated or bit-flipped bloom that slipped past block
        checksums must not silently decode into a filter that answers
        wrongly (a false *negative* loses data); any header/bitmap
        mismatch raises :class:`CorruptionError` so the caller can
        quarantine the table.
        """
        if len(data) < 10:
            raise CorruptionError(
                "bloom", 0, f"truncated bloom header: {len(data)} bytes < 10"
            )
        num_bits = int.from_bytes(data[:8], "little")
        num_hashes = int.from_bytes(data[8:10], "little")
        bitmap = data[10:]
        if num_bits < 1:
            raise CorruptionError("bloom", 0, f"invalid num_bits {num_bits}")
        if num_hashes > 30:
            # Construction caps at 30 probes; anything above is damage.
            raise CorruptionError("bloom", 8, f"invalid num_hashes {num_hashes}")
        expected = (num_bits + 7) // 8
        if len(bitmap) != expected:
            raise CorruptionError(
                "bloom",
                10,
                f"bitmap length {len(bitmap)} != {expected} for {num_bits} bits",
            )
        bloom = cls.__new__(cls)
        bloom.num_bits = num_bits
        bloom.num_hashes = num_hashes
        bloom._bits = bytearray(bitmap)
        return bloom

    @property
    def size_bytes(self) -> int:
        return len(self._bits) + 10
