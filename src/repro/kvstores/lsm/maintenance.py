"""Background maintenance workers for the LSM store.

In background mode (``LSMConfig.background``) flushes and compactions
leave the foreground write path: full memtables are queued as
immutables and drained by a dedicated **flush worker**, while a
**compaction worker** watches the tree and executes whatever the
configured :mod:`~.policies` policy picks.  Writers only block at the
explicit backpressure gate (immutable-queue depth / L0 run count), and
that *stall* time -- not the workers' busy time -- is what flows into
``take_background_ns`` so replay latency attribution stays honest.

Both workers share the store's tree mutex.  Two condition variables on
that mutex coordinate the parties:

* ``work`` -- writers notify it when they queue an immutable memtable
  or a fade request; the flush worker notifies it when a flush grows
  L0 (new compaction work)
* ``room`` -- workers notify it whenever they finish installing
  something; stalled writers, ``flush()`` and ``quiesce()`` wait on it

All waits are timed (:data:`MaintenanceWorkers._TICK_S`) so a missed
notification degrades to a short delay, never a hang.

Crash semantics: :meth:`abandon` models a process kill.  Workers stop
at their next *checkpoint* -- the instant before installing a built
sstable or committing a manifest update -- discarding in-flight work,
exactly the state a real crash would leave for recovery to replay from
the WAL segments and last-committed manifest.  :meth:`shutdown` is the
graceful counterpart used by ``close()``: the flush worker drains the
queue first.

Worker threads are named ``lsm-flush-worker`` and
``lsm-compaction-worker``; the span tracer keys lanes by thread name,
so Chrome-trace exports show maintenance concurrency on separate lanes
for free.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from .store import RocksLSMStore


class MaintenanceWorkers:
    """Flush + compaction worker pair sharing the store's tree mutex."""

    #: timed-wait interval: bounds missed-notify latency and lets the
    #: loops observe stop/abandon flags promptly
    _TICK_S = 0.05

    def __init__(self, store: "RocksLSMStore") -> None:
        self.store = store
        self.work = threading.Condition(store._mutex)
        self.room = threading.Condition(store._mutex)
        self.stopped = False
        self.abandoned = False
        self.fade_requested = False
        self.flush_busy = False
        self.compact_busy = False
        #: first unhandled worker exception; re-raised to the writer
        self.error: Optional[BaseException] = None
        #: wall time the workers spent busy (diagnostics only -- never
        #: fed into take_background_ns, which reports writer stalls)
        self.flush_ns = 0
        self.compact_ns = 0
        self.flush_thread = threading.Thread(
            target=self._flush_loop, name="lsm-flush-worker", daemon=True
        )
        self.compact_thread = threading.Thread(
            target=self._compact_loop, name="lsm-compaction-worker", daemon=True
        )
        self.flush_thread.start()
        self.compact_thread.start()

    # -- control -------------------------------------------------------

    def request_fade(self) -> None:
        """Ask the compaction worker to run a FADE pass (Lethe)."""
        with self.store._mutex:
            self.fade_requested = True
            self.work.notify_all()

    def shutdown(self) -> None:
        """Graceful stop: the flush worker drains the queue, then both
        workers exit and are joined."""
        with self.store._mutex:
            self.stopped = True
            self.work.notify_all()
            self.room.notify_all()
        self._join()

    def abandon(self) -> None:
        """Crash-style stop: workers abort at their next checkpoint,
        dropping un-installed work, and are joined."""
        with self.store._mutex:
            self.abandoned = True
            self.work.notify_all()
            self.room.notify_all()
        self._join()

    def _join(self) -> None:
        for thread in (self.flush_thread, self.compact_thread):
            if thread is not threading.current_thread():
                thread.join()

    def _delay(self) -> None:
        """Optional pre-install sleep (``background_delay_s``) that lets
        crash tests deterministically land a kill mid-maintenance."""
        delay = self.store.config.background_delay_s
        if delay > 0:
            time.sleep(delay)

    def _fail(self, exc: BaseException) -> None:
        with self.store._mutex:
            if self.error is None:
                self.error = exc
            self.flush_busy = False
            self.compact_busy = False
            self.room.notify_all()
            self.work.notify_all()

    # -- flush worker ---------------------------------------------------

    def _flush_loop(self) -> None:
        store = self.store
        try:
            while True:
                with store._mutex:
                    while (
                        not store._immutables
                        and not self.stopped
                        and not self.abandoned
                    ):
                        self.work.wait(self._TICK_S)
                    if self.abandoned:
                        return
                    if not store._immutables:  # stopped with queue drained
                        return
                    # Peek rather than pop: the memtable must stay
                    # visible to readers until its sstable is installed.
                    memtable = store._immutables[0]
                    self.flush_busy = True
                began = time.perf_counter_ns()
                try:
                    self._delay()
                    if self.abandoned:
                        return
                    table = store._build_flush_table(memtable)
                    with store._mutex:
                        if self.abandoned:
                            # Checkpoint: a kill here loses the built
                            # sstable; recovery replays its WAL segments.
                            return
                        store._immutables.pop(0)
                        segments = (
                            store._immutable_segments.pop(0)
                            if store._immutable_segments
                            else []
                        )
                        store._install_flushed_table(table)
                        # Commit the new layout before deleting the WAL
                        # segments that fed it: a crash in between only
                        # replays already-flushed records (idempotent).
                        store._write_manifest()
                        store._drop_wal_segments(segments)
                        self.work.notify_all()  # L0 grew: wake compactor
                finally:
                    self.flush_ns += time.perf_counter_ns() - began
                    with store._mutex:
                        self.flush_busy = False
                        self.room.notify_all()
        except BaseException as exc:  # pragma: no cover - defensive
            self._fail(exc)

    # -- compaction worker ----------------------------------------------

    def _compact_loop(self) -> None:
        store = self.store
        try:
            while True:
                with store._mutex:
                    while (
                        not self.stopped
                        and not self.abandoned
                        and not self.fade_requested
                        and store._policy.pick(store) is None
                    ):
                        self.work.wait(self._TICK_S)
                    if self.stopped or self.abandoned:
                        return
                    fade = self.fade_requested
                    self.fade_requested = False
                    self.compact_busy = True
                began = time.perf_counter_ns()
                try:
                    self._delay()
                    if self.abandoned:
                        return
                    if fade:
                        store._run_fade()
                    else:
                        store._compact_once()
                finally:
                    self.compact_ns += time.perf_counter_ns() - began
                    with store._mutex:
                        self.compact_busy = False
                        self.work.notify_all()
                        self.room.notify_all()
        except BaseException as exc:  # pragma: no cover - defensive
            self._fail(exc)
