"""Pluggable compaction policies for the LSM store.

The paper evaluates a single leveled LSM; real deployments pick a
compaction *shape* to trade write amplification against read fan-out
and space amplification.  This module factors the "what should be
compacted next" decision out of :class:`~.store.RocksLSMStore` into
small policy objects so the harness can sweep the shapes the paper's
section 6 never covered:

* **leveled** -- the original behaviour: L0 merges into L1 when its
  file count hits the trigger, deeper levels compact one file at a
  time while they exceed their byte budget, and compaction outputs
  fold into the (disjoint) target level
* **tiered** -- levels hold *runs* that may overlap in key space; when
  a level accumulates enough runs they are merged wholesale into a
  single run one level down.  Minimal write amplification, widest read
  fan-out
* **universal** -- tiered ingestion plus two global safety valves:
  a full merge of every run when space amplification (bytes above the
  deepest level relative to it) exceeds a ratio, or when the total
  sorted-run count exceeds a cap -- RocksDB's universal style

A policy is a pure *picker*: it inspects the store's level state and
returns the next :class:`CompactionTask` (or ``None`` when the tree is
in shape).  Execution -- merging inputs, installing outputs, dropping
the replaced blobs -- stays in the store, shared by every policy and by
both the inline and background maintenance modes.

Policies with ``overlapping_runs`` set change the read contract: the
store must probe *every* run covering a key (newest sequence first)
instead of one file per level.  They are incompatible with Lethe's
FADE single-file compactions, which assume disjoint levels; the Lethe
store rejects them at construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Type

if TYPE_CHECKING:
    from .sstable import SSTable
    from .store import RocksLSMStore


@dataclass
class CompactionTask:
    """One unit of compaction work chosen by a policy.

    ``inputs`` lists the tables to merge; when ``merge_target_overlap``
    is set the executor additionally folds in every target-level table
    whose key range overlaps the inputs (leveled semantics -- required
    to keep the target level disjoint).  Overlapping-run policies leave
    it off: their outputs land as a new run beside the target level's
    existing runs.
    """

    inputs: List["SSTable"]
    target_level: int
    source_levels: Tuple[int, ...] = ()
    merge_target_overlap: bool = True
    #: why the policy chose this task (surfaced in tracing spans)
    reason: str = ""


class CompactionPolicy:
    """Decides the next compaction; stateless apart from config."""

    name: str = "abstract"
    #: True when levels hold possibly-overlapping runs and reads must
    #: probe every covering run (tiered / universal shapes)
    overlapping_runs: bool = False

    def pick(self, store: "RocksLSMStore") -> Optional[CompactionTask]:
        """Return the next task for ``store``, or ``None`` when idle.

        Called with the store's tree mutex held; must only read level
        state.
        """
        raise NotImplementedError


class LeveledPolicy(CompactionPolicy):
    """Classic leveled compaction (the store's original behaviour)."""

    name = "leveled"

    def pick(self, store: "RocksLSMStore") -> Optional[CompactionTask]:
        cfg = store.config
        levels = store._levels
        if len(levels[0]) >= cfg.l0_compaction_trigger:
            return CompactionTask(
                inputs=list(levels[0]),
                target_level=1,
                source_levels=(0,),
                merge_target_overlap=True,
                reason="l0-file-count",
            )
        for level in range(1, cfg.max_levels - 1):
            if not levels[level]:
                continue
            size = sum(t.data_size for t in levels[level])
            if size > cfg.max_level_bytes(level):
                source = store._pick_compaction_file(level)
                if source is None:
                    continue
                return CompactionTask(
                    inputs=[source],
                    target_level=level + 1,
                    source_levels=(level,),
                    merge_target_overlap=True,
                    reason="size-budget",
                )
        return None


class TieredPolicy(CompactionPolicy):
    """Size-tiered compaction: merge a level's runs wholesale.

    Each flush adds a run to level 0; when any level accumulates
    ``tier_trigger`` runs (defaulting to ``l0_compaction_trigger``)
    they are merged into a single run appended to the next level.
    Successive whole-level merges keep every run's sequence interval
    disjoint from its siblings', which is what lets reads resolve
    overlapping runs purely by ``max_sequence`` order.
    """

    name = "tiered"
    overlapping_runs = True

    def pick(self, store: "RocksLSMStore") -> Optional[CompactionTask]:
        cfg = store.config
        trigger = cfg.tier_trigger or cfg.l0_compaction_trigger
        for level in range(cfg.max_levels - 1):
            runs = store._levels[level]
            if len(runs) >= trigger:
                return CompactionTask(
                    inputs=list(runs),
                    target_level=level + 1,
                    source_levels=(level,),
                    merge_target_overlap=False,
                    reason="tier-full",
                )
        return None


class UniversalPolicy(CompactionPolicy):
    """Universal compaction: tiered ingestion with global safety valves.

    In priority order:

    1. *space amplification*: when the bytes held above the deepest
       nonempty level reach ``universal_max_size_amp`` times that
       level's size, merge **everything** into one run at the deepest
       level (reclaims superseded space and drops tombstones)
    2. *run count*: when the total number of sorted runs reaches
       ``universal_max_runs``, do the same full merge to restore read
       fan-out
    3. otherwise, L0 flush runs merge into a level-1 run at the
       ``l0_compaction_trigger``
    """

    name = "universal"
    overlapping_runs = True

    def pick(self, store: "RocksLSMStore") -> Optional[CompactionTask]:
        cfg = store.config
        levels = store._levels
        nonempty = [idx for idx, level in enumerate(levels) if level]
        total_runs = sum(len(level) for level in levels)
        if nonempty and total_runs > 1:
            deepest = nonempty[-1]
            base = sum(t.data_size for t in levels[deepest])
            rest = sum(
                t.data_size for idx in nonempty[:-1] for t in levels[idx]
            )
            size_amp = bool(base) and rest / base >= cfg.universal_max_size_amp
            run_cap = total_runs >= cfg.universal_max_runs
            if size_amp or run_cap:
                return CompactionTask(
                    inputs=[t for idx in nonempty for t in levels[idx]],
                    target_level=min(max(deepest, 1), cfg.max_levels - 1),
                    source_levels=tuple(nonempty),
                    merge_target_overlap=False,
                    reason="space-amplification" if size_amp else "run-count",
                )
        if len(levels[0]) >= cfg.l0_compaction_trigger:
            return CompactionTask(
                inputs=list(levels[0]),
                target_level=1,
                source_levels=(0,),
                merge_target_overlap=False,
                reason="l0-run-count",
            )
        return None


POLICIES: Dict[str, Type[CompactionPolicy]] = {
    LeveledPolicy.name: LeveledPolicy,
    TieredPolicy.name: TieredPolicy,
    UniversalPolicy.name: UniversalPolicy,
}

#: policy names accepted by ``LSMConfig.compaction_policy`` and the CLI
POLICY_NAMES: Tuple[str, ...] = tuple(sorted(POLICIES))


def resolve_policy(name: str) -> CompactionPolicy:
    """Instantiate the policy registered under ``name``."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown compaction policy {name!r}; "
            f"expected one of {', '.join(POLICY_NAMES)}"
        ) from None
