"""Compaction machinery: k-way merging of sorted runs with merge-operator
and tombstone resolution.

The merge rules follow RocksDB semantics:

* per key, the newest PUT or DELETE is authoritative; older records drop
* MERGE operands newer than a PUT collapse into a single PUT via
  ``full_merge``
* operands newer than a DELETE resolve against an empty base
* operands with no base below them stay as operands -- unless the output
  is the bottom of the tree, where they resolve against an empty base
* tombstones are only dropped at the bottom of the tree
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterable, Iterator, List, Sequence, Tuple

from ..api import MergeOperator
from .record import Record, RecordKind


def merged_record_stream(tables: Sequence) -> Iterator[Record]:
    """K-way merge of SSTable record streams, ordered by (key, sequence)."""
    streams = [table.iter_records() for table in tables]
    return heapq.merge(*streams, key=lambda r: (r.key, r.sequence))


def resolve_key_records(
    records: List[Record],
    merge_operator: MergeOperator,
    at_bottom: bool,
) -> List[Record]:
    """Compact all records for a single key into their minimal form.

    ``records`` is oldest-first.  Returns the records to emit (oldest
    first), possibly empty when a bottom-level tombstone cancels the key.
    """
    operands: List[Record] = []
    base: Record = None  # type: ignore[assignment]
    for record in reversed(records):  # newest first
        if record.kind is RecordKind.MERGE:
            operands.append(record)
        else:
            base = record
            break
    operands.reverse()  # oldest-first for full_merge
    newest_seq = records[-1].sequence
    key = records[-1].key

    if base is not None and base.kind is RecordKind.PUT:
        if not operands:
            return [base]
        value = merge_operator.full_merge(
            base.value, tuple(op.value for op in operands)
        )
        return [Record(RecordKind.PUT, newest_seq, key, value)]

    if base is not None and base.kind is RecordKind.DELETE:
        if operands:
            value = merge_operator.full_merge(
                None, tuple(op.value for op in operands)
            )
            return [Record(RecordKind.PUT, newest_seq, key, value)]
        if at_bottom:
            return []
        return [base]

    # No authoritative base in the inputs: only merge operands.
    if at_bottom:
        value = merge_operator.full_merge(None, tuple(op.value for op in operands))
        return [Record(RecordKind.PUT, newest_seq, key, value)]
    # Try to fold adjacent operands with partial merge to shrink the run.
    folded: List[Record] = []
    for operand in operands:
        if folded:
            combined = merge_operator.partial_merge(folded[-1].value, operand.value)
            if combined is not None:
                folded[-1] = Record(
                    RecordKind.MERGE, operand.sequence, key, combined
                )
                continue
        folded.append(operand)
    return folded


def compact_records(
    records: Iterable[Record],
    merge_operator: MergeOperator,
    at_bottom: bool,
) -> Iterator[Record]:
    """Stream compaction over records sorted by (key, sequence)."""
    for _, group in itertools.groupby(records, key=lambda r: r.key):
        yield from resolve_key_records(list(group), merge_operator, at_bottom)


def split_into_runs(
    records: Iterable[Record], target_file_size: int
) -> Iterator[List[Record]]:
    """Partition an ordered record stream into output-file-sized chunks.

    Records for the same key never straddle a chunk boundary, keeping
    level files non-overlapping.
    """
    chunk: List[Record] = []
    chunk_bytes = 0
    for record in records:
        if (
            chunk
            and chunk_bytes >= target_file_size
            and record.key != chunk[-1].key
        ):
            yield chunk
            chunk = []
            chunk_bytes = 0
        chunk.append(record)
        chunk_bytes += record.encoded_size
    if chunk:
        yield chunk


class CompactionStats:
    """Counters describing compaction work performed by a store."""

    def __init__(self) -> None:
        self.compactions = 0
        self.records_in = 0
        self.records_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.tombstones_dropped = 0

    def as_dict(self) -> dict:
        return {
            "compactions": self.compactions,
            "records_in": self.records_in,
            "records_out": self.records_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "tombstones_dropped": self.tombstones_dropped,
        }


def pick_overlapping(
    tables: Sequence, smallest: bytes, largest: bytes
) -> Tuple[list, list]:
    """Split ``tables`` into (overlapping, disjoint) w.r.t. a key range."""
    overlapping = []
    disjoint = []
    for table in tables:
        if table.overlaps(smallest, largest):
            overlapping.append(table)
        else:
            disjoint.append(table)
    return overlapping, disjoint
