"""LSM-tree stores: the RocksDB stand-in and the delete-aware Lethe variant."""

from .bloom import BloomFilter
from .lethe import LetheConfig, LetheStore
from .maintenance import MaintenanceWorkers
from .memtable import Memtable
from .policies import (
    POLICY_NAMES,
    CompactionPolicy,
    CompactionTask,
    LeveledPolicy,
    TieredPolicy,
    UniversalPolicy,
    resolve_policy,
)
from .record import Record, RecordKind, decode_all, decode_record
from .sstable import SSTable, build_sstable, open_sstable
from .store import LSMConfig, RocksLSMStore

__all__ = [
    "BloomFilter",
    "CompactionPolicy",
    "CompactionTask",
    "LSMConfig",
    "LetheConfig",
    "LetheStore",
    "LeveledPolicy",
    "MaintenanceWorkers",
    "Memtable",
    "POLICY_NAMES",
    "Record",
    "RecordKind",
    "RocksLSMStore",
    "SSTable",
    "TieredPolicy",
    "UniversalPolicy",
    "build_sstable",
    "decode_all",
    "decode_record",
    "open_sstable",
    "resolve_policy",
]
