"""LSM-tree stores: the RocksDB stand-in and the delete-aware Lethe variant."""

from .bloom import BloomFilter
from .lethe import LetheConfig, LetheStore
from .memtable import Memtable
from .record import Record, RecordKind, decode_all, decode_record
from .sstable import SSTable, build_sstable, open_sstable
from .store import LSMConfig, RocksLSMStore

__all__ = [
    "BloomFilter",
    "LSMConfig",
    "LetheConfig",
    "LetheStore",
    "Memtable",
    "Record",
    "RecordKind",
    "RocksLSMStore",
    "SSTable",
    "build_sstable",
    "decode_all",
    "decode_record",
    "open_sstable",
]
