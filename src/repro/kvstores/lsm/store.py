"""RocksDB-like log-structured merge-tree store.

Implements the design traits the paper's evaluation leans on:

* writes land in a memtable after a WAL append; full memtables become
  immutable and are flushed to sorted runs (SSTables) in level 0
* ``merge`` appends a lazy operand -- O(1) at write time -- and the cost
  of combining operands is deferred to reads and compaction (this is why
  LSM stores win the paper's holistic-window workloads, Figure 13)
* pluggable compaction (:mod:`.policies`): leveled (the default -- L0
  runs may overlap; L1+ are sorted, disjoint runs compacted downward
  when a level outgrows its budget), tiered, and universal shapes
* reads consult memtables, then L0 newest-to-oldest, then one file per
  deeper level (or every covering run, for overlapping-run policies),
  short-circuited by per-table bloom filters and served through a
  shared LRU block cache

Two maintenance modes (``LSMConfig.background``):

* **inline** (default): flushes and compactions run synchronously on
  the write path, timed into the background-time account that the
  replayer subtracts from client latency -- the original single-thread
  model, byte-for-byte unchanged
* **background**: full memtables queue as immutables behind a
  dedicated flush worker, compactions run on a second worker
  (:mod:`.maintenance`), the WAL is segmented per memtable so flushed
  segments can be dropped independently, and writers block only at the
  write-stall gate (queue depth / L0 run count); only that stall time
  enters the background-time account
"""

from __future__ import annotations

import heapq
import re
import threading
import time
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .maintenance import MaintenanceWorkers

from ..api import (
    OP_DELETE,
    OP_MERGE,
    OP_PUT,
    AppendMergeOperator,
    BatchOp,
    KVStore,
    MergeOperator,
)
from ...obs import tracing
from ..cache import LRUCache
from ..integrity import (
    ChecksumKind,
    CorruptionError,
    ScrubFinding,
    ScrubReport,
    resolve_checksum_kind,
    timed_scrub,
)
from ..storage import MemoryStorage, Storage, StorageError
from .compaction import (
    CompactionStats,
    compact_records,
    merged_record_stream,
    pick_overlapping,
    split_into_runs,
)
from .memtable import Memtable
from .policies import CompactionTask, resolve_policy
from .record import (
    Record,
    RecordKind,
    decode_wal,
    frame_record,
    frame_records,
    wal_header,
)
from .sstable import SSTable, build_sstable, open_sstable

#: numbered WAL segment blobs used by background mode ("wal-000001");
#: inline mode keeps the single legacy "wal-current" blob
_WAL_SEGMENT_RE = re.compile(r"^wal-(\d{6,})$")

#: background-build duty cycle (see :meth:`RocksLSMStore._cooperative`):
#: work ~_COOP_SLICE_S, sleep _COOP_SLEEP_S.  Timer slack and scheduler
#: wake latency stretch the effective pause to ~0.2-1ms alongside an
#: active writer thread, so the slice is sized to keep the worker's
#: duty cycle above realistic maintenance demand (~20-25%).
_COOP_SLICE_S = 300e-6
_COOP_SLEEP_S = 100e-6


@dataclass
class LSMConfig:
    """Tuning knobs, scaled for Python-sized workloads.

    The paper configures RocksDB with two 128 MB write buffers and a
    64 MB block cache; the defaults here keep the same proportions at
    1/1000 scale (128 KB buffers, 64 KB cache) so that 10^4-10^5-op
    runs exercise flushes and compactions the way the paper's 2M-op
    runs do.
    """

    write_buffer_size: int = 128 * 1024
    max_write_buffers: int = 2
    block_size: int = 4096
    block_cache_size: int = 64 * 1024
    bits_per_key: int = 10
    l0_compaction_trigger: int = 4
    max_levels: int = 7
    level_base_bytes: int = 1024 * 1024
    level_multiplier: int = 10
    target_file_size: int = 256 * 1024
    enable_wal: bool = True
    #: checksum algorithm for WAL frames and SSTable blocks:
    #: "crc32c", "crc32", "none" (legacy v1 formats), or None/"default"
    #: for the fastest available kind
    checksum: Optional[str] = None
    #: compaction shape: "leveled", "tiered", or "universal"
    #: (see :mod:`repro.kvstores.lsm.policies`)
    compaction_policy: str = "leveled"
    #: runs per level before a tiered whole-level merge; 0 reuses
    #: ``l0_compaction_trigger``
    tier_trigger: int = 0
    #: universal: full-merge when bytes above the deepest level reach
    #: this multiple of it
    universal_max_size_amp: float = 2.0
    #: universal: full-merge when the total sorted-run count reaches this
    universal_max_runs: int = 8
    #: run flushes and compactions on background worker threads instead
    #: of inline on the write path
    background: bool = False
    #: background: writers stall while this many immutable memtables
    #: are queued for flush
    max_immutable_memtables: int = 4
    #: background: writers stall while L0 holds this many runs
    l0_stall_trigger: int = 12
    #: background: seconds each worker sleeps before installing its
    #: work -- lets crash tests deterministically land a kill
    #: mid-flush / mid-compaction (0 = no delay)
    background_delay_s: float = 0.0

    def max_level_bytes(self, level: int) -> int:
        """Byte budget of level ``level`` (level 1 is the base)."""
        return self.level_base_bytes * self.level_multiplier ** max(0, level - 1)


class RocksLSMStore(KVStore):
    """The RocksDB stand-in used throughout the evaluation."""

    name = "rocksdb"

    def __init__(
        self,
        config: Optional[LSMConfig] = None,
        merge_operator: Optional[MergeOperator] = None,
        storage: Optional[Storage] = None,
    ) -> None:
        super().__init__()
        self.config = config or LSMConfig()
        self.merge_operator = merge_operator or AppendMergeOperator()
        self.storage = storage if storage is not None else MemoryStorage()
        self.block_cache: LRUCache = LRUCache(
            self.config.block_cache_size, sizer=lambda blk: blk.size_bytes
        )
        self.compaction_stats = CompactionStats()
        self._memtable = Memtable()
        self._immutables: List[Memtable] = []
        self._levels: List[List[SSTable]] = [[] for _ in range(self.config.max_levels)]
        self._sequence = 0
        self._next_file_id = 0
        self._wal_name = "wal-current"
        self._wal_bytes = 0
        self._new_outputs: List[SSTable] = []
        self._background_ns = 0
        #: guards _background_ns: in background mode the writer's stall
        #: accounting and take_background_ns race across threads
        self._background_lock = threading.Lock()
        #: tree mutex: guards memtables, levels, WAL segment lists, and
        #: stats in background mode (a no-op re-entrant lock inline)
        self._mutex = threading.RLock()
        self._write_stall_count = 0
        self._write_stall_ns = 0
        self.checksum_kind = resolve_checksum_kind(self.config.checksum)
        #: tables removed from the tree after failing a checksum
        self.quarantined: List[SSTable] = []
        self._policy = resolve_policy(self.config.compaction_policy)
        self._validate_policy()
        #: background-mode WAL segments: the active memtable's segments,
        #: one segment list per queued immutable, and per-segment sizes
        self._wal_seq = 0
        self._active_segments: List[str] = []
        self._immutable_segments: List[List[str]] = []
        self._segment_bytes = {}
        self._bg: Optional["MaintenanceWorkers"] = None
        if self.config.background:
            if self.config.enable_wal:
                # Seed the segment counter past anything already on
                # disk so a recovering store never overwrites segments
                # it has yet to replay.
                for name in self.storage.list():
                    match = _WAL_SEGMENT_RE.match(name)
                    if match:
                        self._wal_seq = max(self._wal_seq, int(match.group(1)))
                self._active_segments = [self._new_wal_segment()]
            from .maintenance import MaintenanceWorkers

            self._bg = MaintenanceWorkers(self)
        elif self.config.enable_wal and not self.storage.exists(self._wal_name):
            self._reset_wal()

    def _validate_policy(self) -> None:
        """Subclass hook: veto incompatible compaction policies."""

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self.stats.puts += 1
        self._write(Record(RecordKind.PUT, self._next_sequence(), key, value))

    def delete(self, key: bytes) -> None:
        self._check_open()
        self.stats.deletes += 1
        self._write(Record(RecordKind.DELETE, self._next_sequence(), key, b""))

    def merge(self, key: bytes, operand: bytes) -> None:
        self._check_open()
        self.stats.merges += 1
        self._write(Record(RecordKind.MERGE, self._next_sequence(), key, operand))

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    def apply_batch(self, ops: Sequence[BatchOp]) -> None:
        """Group commit: one checksummed WAL frame for the whole batch.

        Compared to N ``put``/``merge``/``delete`` calls, a batch pays
        the WAL framing, checksum call, storage append, and the
        flush-threshold check once, and makes a single pass over the
        memtable -- RocksDB's ``WriteBatch`` economics.  The frame is
        atomic on replay: a torn group frame drops the whole batch,
        never a prefix of it.
        """
        self._check_open()
        if not ops:
            return
        records: List[Record] = []
        append = records.append
        stats = self.stats
        sequence = self._sequence
        for opcode, key, value in ops:
            sequence += 1
            if opcode == OP_PUT:
                stats.puts += 1
                append(Record(RecordKind.PUT, sequence, key, value))
            elif opcode == OP_MERGE:
                stats.merges += 1
                append(Record(RecordKind.MERGE, sequence, key, value))
            elif opcode == OP_DELETE:
                stats.deletes += 1
                append(Record(RecordKind.DELETE, sequence, key, b""))
            else:
                raise ValueError(
                    f"apply_batch is write-only; cannot apply opcode {opcode}"
                )
        self._sequence = sequence
        if self._bg is not None:
            self._apply_batch_background(records)
            self._note_batch_writes(len(records))
            return
        if self.config.enable_wal:
            with tracing.span("lsm.wal_commit", records=len(records)) as sp:
                if self.checksum_kind is not ChecksumKind.NONE:
                    encoded = frame_records(records, self.checksum_kind)
                else:
                    encoded = b"".join(record.encode() for record in records)
                self.storage.append(self._wal_name, encoded)
                sp.add(bytes=len(encoded))
            self._wal_bytes += len(encoded)
            stats.bytes_written += len(encoded)
        self._memtable.add_all(records)
        if self._memtable.approximate_bytes >= self.config.write_buffer_size:
            self._rotate_memtable()
        self._note_batch_writes(len(records))

    def _apply_batch_background(self, records: List[Record]) -> None:
        with self._mutex:
            if self.config.enable_wal:
                with tracing.span("lsm.wal_commit", records=len(records)) as sp:
                    if self.checksum_kind is not ChecksumKind.NONE:
                        encoded = frame_records(records, self.checksum_kind)
                    else:
                        encoded = b"".join(record.encode() for record in records)
                    self.storage.append(self._wal_name, encoded)
                    sp.add(bytes=len(encoded))
                self._segment_bytes[self._wal_name] += len(encoded)
                self._wal_bytes += len(encoded)
                self.stats.bytes_written += len(encoded)
            self._memtable.add_all(records)
            if self._memtable.approximate_bytes >= self.config.write_buffer_size:
                self._rotate_background()
                self._stall_for_room()

    def _note_batch_writes(self, count: int) -> None:
        """Hook for subclasses that account per-write work (Lethe's
        FADE counter); called once per applied batch."""

    def _reset_wal(self) -> None:
        """(Re)create the WAL holding only its format header."""
        header = (
            wal_header(self.checksum_kind)
            if self.checksum_kind is not ChecksumKind.NONE
            else b""
        )
        self.storage.write(self._wal_name, header)
        self._wal_bytes = 0

    def _new_wal_segment(self) -> str:
        """Create the next numbered WAL segment and make it active."""
        self._wal_seq += 1
        name = f"wal-{self._wal_seq:06d}"
        header = (
            wal_header(self.checksum_kind)
            if self.checksum_kind is not ChecksumKind.NONE
            else b""
        )
        self.storage.write(name, header)
        self._segment_bytes[name] = 0
        self._wal_name = name
        return name

    def _drop_wal_segments(self, names: List[str]) -> None:
        """Delete flushed-and-committed WAL segments."""
        for name in names:
            self.storage.delete(name)
            self._wal_bytes -= self._segment_bytes.pop(name, 0)
        if self._wal_bytes < 0:
            self._wal_bytes = 0

    def _write(self, record: Record) -> None:
        if self._bg is not None:
            self._write_background(record)
            return
        if self.config.enable_wal:
            if self.checksum_kind is not ChecksumKind.NONE:
                encoded = frame_record(record, self.checksum_kind)
            else:
                encoded = record.encode()
            self.storage.append(self._wal_name, encoded)
            self._wal_bytes += len(encoded)
            self.stats.bytes_written += len(encoded)
        self._memtable.add(record)
        if self._memtable.approximate_bytes >= self.config.write_buffer_size:
            self._rotate_memtable()

    def _write_background(self, record: Record) -> None:
        with self._mutex:
            if self.config.enable_wal:
                if self.checksum_kind is not ChecksumKind.NONE:
                    encoded = frame_record(record, self.checksum_kind)
                else:
                    encoded = record.encode()
                self.storage.append(self._wal_name, encoded)
                self._segment_bytes[self._wal_name] += len(encoded)
                self._wal_bytes += len(encoded)
                self.stats.bytes_written += len(encoded)
            self._memtable.add(record)
            if self._memtable.approximate_bytes >= self.config.write_buffer_size:
                self._rotate_background()
                self._stall_for_room()

    def _rotate_memtable(self) -> None:
        if not self._memtable:
            return
        self._immutables.append(self._memtable)
        self._memtable = Memtable()
        if len(self._immutables) >= self.config.max_write_buffers:
            # Flush + any cascading compactions are background work in
            # RocksDB; track the time so latency reporting can exclude it.
            begin = time.perf_counter_ns()
            self._flush_immutables()
            self._add_background_ns(time.perf_counter_ns() - begin)

    def _rotate_background(self) -> None:
        """Queue the full memtable for the flush worker (mutex held)."""
        if not self._memtable:
            return
        self._immutables.append(self._memtable)
        self._immutable_segments.append(self._active_segments)
        self._memtable = Memtable()
        if self.config.enable_wal:
            self._active_segments = [self._new_wal_segment()]
        else:
            self._active_segments = []
        self._bg.work.notify_all()

    def _stall_needed(self) -> bool:
        cfg = self.config
        return (
            len(self._immutables) >= cfg.max_immutable_memtables
            or len(self._levels[0]) >= cfg.l0_stall_trigger
        )

    def _stall_for_room(self) -> None:
        """Write-stall gate (mutex held): block the writer while the
        flush queue or L0 exceed their limits.

        The time spent here is the *client-visible* cost of background
        maintenance, so it feeds the background-time account that the
        replayer subtracts -- mirroring how a real store's stalled
        writers, not its worker threads, are what latency percentiles
        see.
        """
        bg = self._bg
        if not self._stall_needed():
            return
        self._write_stall_count += 1
        begin = time.perf_counter_ns()
        with tracing.span("lsm.write_stall") as sp:
            while self._stall_needed():
                if bg.error is not None:
                    raise bg.error
                if bg.stopped or bg.abandoned:
                    break
                bg.room.wait(0.05)
            stalled = time.perf_counter_ns() - begin
            sp.add(stall_ms=round(stalled / 1e6, 3))
        self._write_stall_ns += stalled
        self._add_background_ns(stalled)

    def _add_background_ns(self, delta: int) -> None:
        with self._background_lock:
            self._background_ns += delta

    def take_background_ns(self) -> int:
        """Background-maintenance time attributable to recent ops.

        Inline mode: the flush/compaction work performed on the write
        path.  Background mode: writer *stall* time only -- worker busy
        time is genuinely concurrent and never double-counted here.
        Thread-safe either way.
        """
        with self._background_lock:
            spent, self._background_ns = self._background_ns, 0
        return spent

    @property
    def write_stall_count(self) -> int:
        """Write stalls imposed by the backpressure gate."""
        return self._write_stall_count

    @property
    def write_stall_ns(self) -> int:
        """Total nanoseconds writers spent blocked in write stalls."""
        return self._write_stall_ns

    @property
    def immutable_queue_depth(self) -> int:
        """Immutable memtables queued for flushing."""
        return len(self._immutables)

    def _flush_immutables(self) -> None:
        while self._immutables:
            memtable = self._immutables.pop(0)
            self._flush_memtable(memtable)
        # Persist the level layout *before* truncating the WAL: a crash
        # in between must never leave data reachable from neither.
        self._write_manifest()
        if self.config.enable_wal:
            self._reset_wal()

    def _flush_memtable(self, memtable: Memtable) -> None:
        table = self._build_flush_table(memtable)
        self._install_flushed_table(table)
        self._maybe_compact()

    def _bg_pause(self) -> None:
        """One politeness pause of a background build (see
        :meth:`_cooperative`).  Skips the sleep once writers are
        stalling: the worker then drains at full speed and the stall
        gate accounts the pressure honestly."""
        time.sleep(0.0 if self._stall_needed() else _COOP_SLEEP_S)

    def _cooperative(self, records, slice_s: float = _COOP_SLICE_S):
        """Duty-cycle background builds: work ~``slice_s`` seconds,
        then briefly *sleep* so the foreground writer can run.

        On a single core a CPU-bound worker is not background at all:
        it holds the GIL for a full switch interval (5 ms by default)
        per slice, and ``time.sleep(0)`` does not hand the GIL over --
        a waiting thread only forces a drop after the switch interval.
        A real sleep releases the GIL for its whole duration, so the
        writer's worst-case interference drops from the switch interval
        to one work slice.  Slices are time-based because per-record
        cost varies ~10x between flush encoding and deep k-way merges.
        Inline mode returns ``records`` untouched -- the build runs on
        the write path there anyway.
        """
        if self._bg is None:
            return records

        def generator():
            clock = time.perf_counter
            deadline = clock() + slice_s
            for record in records:
                if clock() >= deadline:
                    self._bg_pause()
                    deadline = clock() + slice_s
                yield record

        return generator()

    def _build_flush_table(self, memtable: Memtable) -> Optional[SSTable]:
        """Write a memtable out as an SSTable (not yet in the tree)."""
        with tracing.span("lsm.flush", bytes=memtable.approximate_bytes) as sp:
            table = build_sstable(
                self._take_file_id(),
                self._cooperative(memtable.sorted_records()),
                self.storage,
                block_size=self.config.block_size,
                bits_per_key=self.config.bits_per_key,
                checksum_kind=self.checksum_kind,
                cooperate=self._bg_pause if self._bg is not None else None,
            )
            if table is not None:
                sp.add(sstable_bytes=table.data_size)
        return table

    def _install_flushed_table(self, table: Optional[SSTable]) -> None:
        """Add a freshly built SSTable to level 0."""
        if table is None:
            return
        with self._mutex:
            self._levels[0].append(table)
            self.stats.flushes += 1
            self.stats.bytes_written += table.data_size
            self._note_flushed_table(table)

    def _note_flushed_table(self, table: SSTable) -> None:
        """Subclass hook, called under the tree mutex when a flushed
        table lands in level 0 (Lethe stamps tombstone ages here)."""

    def flush(self) -> None:
        """Flush the active and immutable memtables to level 0.

        Background mode queues the active memtable and waits for the
        flush worker to drain the queue.
        """
        bg = self._bg
        if bg is None:
            if self._memtable:
                self._rotate_memtable()
            self._flush_immutables()
            return
        with self._mutex:
            if self._memtable:
                self._rotate_background()
            while self._immutables or bg.flush_busy:
                if bg.error is not None:
                    raise bg.error
                if bg.abandoned:
                    return
                bg.room.wait(0.05)

    def quiesce(self) -> None:
        """Drain all background maintenance: flush queue empty, no
        compaction in flight, no pending policy work.  No-op inline."""
        bg = self._bg
        if bg is None:
            return
        self.flush()
        with self._mutex:
            while True:
                if bg.error is not None:
                    raise bg.error
                if bg.stopped or bg.abandoned:
                    return
                if (
                    not bg.flush_busy
                    and not bg.compact_busy
                    and not bg.fade_requested
                    and not self._immutables
                    and self._policy.pick(self) is None
                ):
                    return
                bg.room.wait(0.05)

    def _run_fade(self) -> None:
        """Execute a queued FADE pass (Lethe overrides; base no-op)."""

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        self.stats.gets += 1
        if self._bg is None:
            return self._get_resolved(key)
        with self._mutex:
            return self._get_resolved(key)

    def multi_get(self, keys) -> List[Optional[bytes]]:
        """Vectored get: probe keys in sorted order.

        Sorting means keys that land in the same SSTable block hit the
        block cache back-to-back (one decode serves the whole cluster)
        and per-table bloom/index probes run with warm lookup state --
        the MultiGet locality trick.  Results come back in input order;
        duplicate keys are resolved once.
        """
        self._check_open()
        self.stats.gets += len(keys)
        if self._bg is None:
            resolve = self._get_resolved
            resolved = {key: resolve(key) for key in sorted(set(keys))}
            return [resolved[key] for key in keys]
        with self._mutex:
            resolve = self._get_resolved
            resolved = {key: resolve(key) for key in sorted(set(keys))}
            return [resolved[key] for key in keys]

    def _get_resolved(self, key: bytes) -> Optional[bytes]:
        operands: List[bytes] = []
        resolved, value = self._lookup_memtables(key, operands)
        if resolved:
            return value
        resolved, value = self._lookup_tables(key, operands)
        if resolved:
            return value
        if operands:
            # Operands were collected newest-first; apply oldest-first.
            return self.merge_operator.full_merge(None, tuple(reversed(operands)))
        return None

    def _lookup_memtables(
        self, key: bytes, operands: List[bytes]
    ) -> Tuple[bool, Optional[bytes]]:
        for memtable in [self._memtable] + list(reversed(self._immutables)):
            stack = memtable.lookup(key)
            if not stack:
                continue
            for record in reversed(stack):
                if record.kind is RecordKind.MERGE:
                    operands.append(record.value)
                elif record.kind is RecordKind.PUT:
                    return True, self._apply_operands(record.value, operands)
                else:  # DELETE
                    return True, self._apply_tombstone(operands)
        return False, None

    def _lookup_tables(
        self, key: bytes, operands: List[bytes]
    ) -> Tuple[bool, Optional[bytes]]:
        if self._policy.overlapping_runs:
            return self._lookup_tables_overlapping(key, operands)
        for table in reversed(self._levels[0]):
            resolved, value = self._scan_table_records(table, key, operands)
            if resolved:
                return True, value
        for level in self._levels[1:]:
            for table in level:
                if table.smallest_key <= key <= table.largest_key:
                    resolved, value = self._scan_table_records(table, key, operands)
                    if resolved:
                        return True, value
                    break  # disjoint level: only one file can hold the key
        return False, None

    def _lookup_tables_overlapping(
        self, key: bytes, operands: List[bytes]
    ) -> Tuple[bool, Optional[bytes]]:
        """Probe every run covering ``key``, newest data first.

        Tiered/universal runs may overlap in key space but never in
        sequence intervals (flush order and whole-level merges keep
        each run's epoch contiguous and disjoint from its siblings'),
        so descending ``max_sequence`` order is newest-first.
        """
        candidates = [
            table
            for level in self._levels
            for table in level
            if table.smallest_key <= key <= table.largest_key
        ]
        candidates.sort(key=lambda t: -t.max_sequence)
        for table in candidates:
            resolved, value = self._scan_table_records(table, key, operands)
            if resolved:
                return True, value
        return False, None

    def _scan_table_records(
        self, table: SSTable, key: bytes, operands: List[bytes]
    ) -> Tuple[bool, Optional[bytes]]:
        try:
            records = table.get_records(key, self.block_cache)
        except CorruptionError:
            # Fail-stop: never serve bytes from a damaged block.  The
            # table is quarantined so later reads of this key range go
            # to intact tables in deeper levels instead.
            self._quarantine_table(table)
            raise
        self.stats.bytes_read += sum(r.encoded_size for r in records)
        for record in reversed(records):
            if record.kind is RecordKind.MERGE:
                operands.append(record.value)
            elif record.kind is RecordKind.PUT:
                return True, self._apply_operands(record.value, operands)
            else:
                return True, self._apply_tombstone(operands)
        return False, None

    def _apply_operands(self, base: bytes, operands: List[bytes]) -> bytes:
        if not operands:
            return base
        return self.merge_operator.full_merge(base, tuple(reversed(operands)))

    def _apply_tombstone(self, operands: List[bytes]) -> Optional[bytes]:
        if not operands:
            return None
        return self.merge_operator.full_merge(None, tuple(reversed(operands)))

    def scan(self, start: bytes, end: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Merged ordered scan across memtables and all levels.

        Background mode materializes the scan under the tree mutex so
        the iterator never races a concurrent flush or compaction.
        """
        self._check_open()
        if self._bg is None:
            return self._scan_resolved(start, end)
        with self._mutex:
            return iter(list(self._scan_resolved(start, end)))

    def _scan_resolved(self, start: bytes, end: bytes) -> Iterator[Tuple[bytes, bytes]]:
        sources: List[List[Record]] = []
        for memtable in [self._memtable] + list(self._immutables):
            sources.append(
                [r for r in memtable.sorted_records() if start <= r.key < end]
            )
        for level in self._levels:
            for table in level:
                if table.overlaps(start, end):
                    sources.append(
                        [r for r in table.iter_records() if start <= r.key < end]
                    )
        merged = heapq.merge(*sources, key=lambda r: (r.key, r.sequence))
        current_key: Optional[bytes] = None
        bucket: List[Record] = []
        for record in merged:
            if record.key != current_key:
                if bucket:
                    value = self._resolve_bucket(bucket)
                    if value is not None:
                        yield current_key, value  # type: ignore[misc]
                current_key = record.key
                bucket = []
            bucket.append(record)
        if bucket and current_key is not None:
            value = self._resolve_bucket(bucket)
            if value is not None:
                yield current_key, value

    def _resolve_bucket(self, records: List[Record]) -> Optional[bytes]:
        operands: List[bytes] = []
        for record in sorted(records, key=lambda r: -r.sequence):
            if record.kind is RecordKind.MERGE:
                operands.append(record.value)
            elif record.kind is RecordKind.PUT:
                return self._apply_operands(record.value, operands)
            else:
                return self._apply_tombstone(operands)
        if operands:
            return self.merge_operator.full_merge(None, tuple(reversed(operands)))
        return None

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def _take_file_id(self) -> int:
        with self._mutex:
            self._next_file_id += 1
            return self._next_file_id

    def _maybe_compact(self) -> None:
        """Run policy-picked compactions to quiescence (inline mode)."""
        while self._compact_once():
            pass

    def _compact_once(self) -> bool:
        """Pick and execute one compaction; False when the tree is in
        shape (shared by the inline path and the compaction worker)."""
        with self._mutex:
            task = self._policy.pick(self)
        if task is None:
            return False
        return self._execute_task(task)

    def _execute_task(self, task: CompactionTask) -> bool:
        with self._mutex:
            inputs = self._task_inputs(task)
        if not inputs:
            return False
        self._run_compaction(
            inputs, from_levels=task.source_levels, target_level=task.target_level
        )
        return self._install_compaction(inputs, task)

    def _task_inputs(self, task: CompactionTask) -> List[SSTable]:
        """Validate a task against the current tree (mutex held).

        Tables the policy picked may have been quarantined since; they
        are filtered out.  Leveled-style tasks fold in the target-level
        tables overlapping the inputs' key range so the target stays
        disjoint.
        """
        in_tree = {id(t) for level in self._levels for t in level}
        inputs = [t for t in task.inputs if id(t) in in_tree]
        if not inputs:
            return []
        if task.merge_target_overlap:
            smallest = min(t.smallest_key for t in inputs)
            largest = max(t.largest_key for t in inputs)
            overlapping, _ = pick_overlapping(
                self._levels[task.target_level], smallest, largest
            )
            seen = {id(t) for t in inputs}
            inputs = inputs + [t for t in overlapping if id(t) not in seen]
        return inputs

    def _compact_l0(self) -> None:
        """Merge all of L0 one level down (Lethe's FADE uses this)."""
        inputs = list(self._levels[0])
        if not inputs:
            return
        self._execute_task(
            CompactionTask(
                inputs=inputs,
                target_level=1,
                source_levels=(0,),
                merge_target_overlap=not self._policy.overlapping_runs,
                reason="l0",
            )
        )

    def _pick_compaction_file(self, level: int) -> Optional[SSTable]:
        if not self._levels[level]:
            return None
        # Largest file first frees the most budget per compaction.
        return max(self._levels[level], key=lambda t: t.data_size)

    def _run_compaction(
        self, inputs: List[SSTable], from_levels: Tuple[int, ...], target_level: int
    ) -> None:
        with tracing.span(
            "lsm.compaction",
            level=target_level,
            inputs=len(inputs),
            bytes_in=sum(t.data_size for t in inputs),
        ):
            self._run_compaction_inner(inputs, target_level)

    def _run_compaction_inner(
        self, inputs: List[SSTable], target_level: int
    ) -> None:
        """Merge ``inputs`` into new output tables (``_new_outputs``).

        Pure build phase: the tree is not modified, so in background
        mode it runs without the mutex and readers keep serving from
        the input tables until :meth:`_install_compaction` swaps them.
        """
        with self._mutex:
            at_bottom = self._is_bottom(target_level, inputs)
        stream = self._cooperative(merged_record_stream(inputs))
        compacted = compact_records(stream, self.merge_operator, at_bottom)
        outputs: List[SSTable] = []
        for run in split_into_runs(compacted, self.config.target_file_size):
            table = build_sstable(
                self._take_file_id(),
                self._cooperative(iter(run)),
                self.storage,
                block_size=self.config.block_size,
                bits_per_key=self.config.bits_per_key,
                checksum_kind=self.checksum_kind,
                cooperate=self._bg_pause if self._bg is not None else None,
            )
            if table is not None:
                outputs.append(table)
        self._new_outputs = outputs

    def _install_compaction(self, inputs: List[SSTable], task: CompactionTask) -> bool:
        """Atomically swap compaction inputs for outputs in the tree."""
        outputs = self._new_outputs
        with self._mutex:
            bg = self._bg
            if bg is not None and bg.abandoned:
                # Simulated kill at the install checkpoint: output blobs
                # stay as orphans (recovery ignores anything the
                # manifest doesn't reference), like a real crash.
                self._discard_compaction_outputs(outputs)
                self._new_outputs = []
                return False
            input_ids = {id(t) for t in inputs}
            present = sum(
                1 for level in self._levels for t in level if id(t) in input_ids
            )
            if present != len(inputs):
                # An input was quarantined while the merge ran;
                # installing the outputs could resurrect data the
                # quarantine removed, so discard them instead.
                for table in outputs:
                    table.drop(self.block_cache)
                self._discard_compaction_outputs(outputs)
                self._new_outputs = []
                return False
            for index, level in enumerate(self._levels):
                self._levels[index] = [t for t in level if id(t) not in input_ids]
            target = task.target_level
            self._levels[target] = self._sorted_level(self._levels[target] + outputs)
            bytes_in = sum(t.data_size for t in inputs)
            bytes_out = sum(t.data_size for t in outputs)
            tombstones_in = sum(t.num_tombstones for t in inputs)
            tombstones_out = sum(t.num_tombstones for t in outputs)
            self.compaction_stats.compactions += 1
            self.compaction_stats.records_in += sum(t.num_entries for t in inputs)
            self.compaction_stats.records_out += sum(t.num_entries for t in outputs)
            self.compaction_stats.bytes_in += bytes_in
            self.compaction_stats.bytes_out += bytes_out
            self.compaction_stats.tombstones_dropped += max(
                0, tombstones_in - tombstones_out
            )
            self.stats.compactions += 1
            self.stats.bytes_read += bytes_in
            self.stats.bytes_written += bytes_out
            # Commit the new layout before dropping the replaced blobs:
            # a crash in between leaves orphans, never dangling manifest
            # references.
            self._write_manifest()
            for table in inputs:
                table.drop(self.block_cache)
            self._new_outputs = []
            return True

    def _discard_compaction_outputs(self, outputs: List[SSTable]) -> None:
        """Subclass hook: compaction outputs were built but will never
        enter the tree (Lethe forgets their tombstone stamps)."""

    def _is_bottom(self, target_level: int, inputs: List[SSTable]) -> bool:
        input_ids = {t.file_id for t in inputs}
        if self._policy.overlapping_runs:
            # Overlapping runs can shadow-hide data under the inputs at
            # *any* level from the target down, so tombstones may only
            # drop when every such run is an input.
            for level in self._levels[target_level:]:
                if any(t.file_id not in input_ids for t in level):
                    return False
            return True
        if target_level >= self.config.max_levels - 1:
            return True
        for deeper in self._levels[target_level + 1 :]:
            if any(t.file_id not in input_ids for t in deeper):
                return False
        # Also nothing left in the target level beyond the inputs.
        return all(
            t.file_id in input_ids for t in self._levels[target_level]
        ) or not self._levels[target_level]

    @staticmethod
    def _sorted_level(tables: List[SSTable]) -> List[SSTable]:
        return sorted(tables, key=lambda t: t.smallest_key)

    # ------------------------------------------------------------------
    # Introspection / recovery
    # ------------------------------------------------------------------

    def _quarantine_table(self, table: SSTable) -> None:
        """Remove a corrupt table from the tree (blob left for forensics)."""
        with self._mutex:
            self.integrity.detected += 1
            self.quarantined.append(table)
            for level_index, level in enumerate(self._levels):
                self._levels[level_index] = [t for t in level if t is not table]
            self.block_cache.invalidate_where(
                lambda ck: isinstance(ck, tuple) and ck[0] == table.file_id
            )
            if self.storage.exists(self._MANIFEST_NAME):
                self._write_manifest()

    def level_file_counts(self) -> List[int]:
        return [len(level) for level in self._levels]

    def total_data_bytes(self) -> int:
        return sum(t.data_size for level in self._levels for t in level)

    _MANIFEST_NAME = "manifest-current"

    def _write_manifest(self) -> None:
        """Persist the level layout (which SSTables live where)."""
        lines = []
        for level_index, level in enumerate(self._levels):
            for table in level:
                lines.append(f"{level_index} {table.file_id} {table.blob_name}")
        self.storage.write(self._MANIFEST_NAME, "\n".join(lines).encode())

    def recover(self) -> int:
        """Full crash recovery: reopen the manifest's SSTables, then
        replay the WAL.  Returns the number of WAL records replayed."""
        with self._mutex:
            with tracing.span("lsm.recover_manifest"):
                self._recover_manifest()
            with tracing.span("lsm.recover_wal") as sp:
                replayed = self.recover_wal()
                sp.add(records=replayed)
        return replayed

    def _recover_manifest(self) -> None:
        if not self.storage.exists(self._MANIFEST_NAME):
            return
        manifest = self.storage.read(self._MANIFEST_NAME).decode()
        self._levels = [[] for _ in range(self.config.max_levels)]
        for line in manifest.splitlines():
            if not line.strip():
                continue
            level_str, file_id_str, blob_name = line.split(" ", 2)
            try:
                table = open_sstable(int(file_id_str), self.storage, blob_name)
            except (CorruptionError, StorageError) as exc:
                # A zero-length blob (interrupted flush) or damaged
                # table must not abort recovery of the healthy rest.
                warnings.warn(
                    f"skipping unreadable sstable {blob_name!r} during "
                    f"recovery: {exc}",
                    stacklevel=2,
                )
                self.integrity.detected += 1
                continue
            self._levels[int(level_str)].append(table)
            self._next_file_id = max(self._next_file_id, table.file_id)
            self._sequence = max(self._sequence, table.max_sequence)
        for level_index in range(1, self.config.max_levels):
            self._levels[level_index] = self._sorted_level(
                self._levels[level_index]
            )

    def recover_wal(self) -> int:
        """Replay the WAL into the memtable; returns records replayed.

        Used after simulated crashes: a fresh store pointed at the same
        storage rebuilds its unflushed writes.  Use :meth:`recover` for
        full recovery including flushed data.

        Replay is corruption-aware: it stops at the first torn or
        checksum-failing record, truncates the file to the intact
        prefix (counted as a detected + repaired corruption), and
        replays exactly the records before the damage.

        Replay order is independent of *this* store's mode -- a store
        that died in background mode may well restart inline, and its
        numbered segments still hold acknowledged writes.  The legacy
        ``wal-current`` blob replays first (if an inline life left
        one), then each numbered segment in order, stopping
        point-in-time at the first damaged segment; segments written
        after the damage are dropped, since replaying around a hole
        would reorder history.
        """
        if not self.config.enable_wal:
            return 0
        return self._recover_wal_segments()

    def _discover_wal_segments(self) -> List[str]:
        """All WAL blobs on storage, replay-ordered (legacy first)."""
        found = []
        for name in self.storage.list():
            if name == "wal-current":
                found.append((0, 0, name))
            else:
                match = _WAL_SEGMENT_RE.match(name)
                if match:
                    found.append((1, int(match.group(1)), name))
        return [name for _, _, name in sorted(found)]

    def _recover_wal_segments(self) -> int:
        with self._mutex:
            active = set(self._active_segments)
            names = [n for n in self._discover_wal_segments() if n not in active]
            replayed = 0
            replayed_records: List[Record] = []
            survivors: List[str] = []
            damaged_at: Optional[int] = None
            for index, name in enumerate(names):
                buf = self.storage.read(name)
                decoded = decode_wal(buf)
                for record in decoded.records:
                    self._memtable.add(record)
                    self._sequence = max(self._sequence, record.sequence)
                    replayed_records.append(record)
                    replayed += 1
                survivors.append(name)
                if decoded.truncated:
                    self.integrity.detected += 1
                    self.storage.write(name, buf[: decoded.valid_bytes])
                    self.integrity.repaired += 1
                    warnings.warn(
                        f"WAL corruption in segment {name!r} "
                        f"({decoded.corruption}); truncated to "
                        f"{decoded.valid_bytes} intact bytes",
                        stacklevel=2,
                    )
                    damaged_at = index
                    break
            if damaged_at is not None:
                # Point-in-time stop: segments written after the damage
                # are dropped -- replaying around a hole would reorder
                # history.
                for name in names[damaged_at + 1 :]:
                    self.integrity.detected += 1
                    self.storage.delete(name)
                    warnings.warn(
                        f"dropping WAL segment {name!r} written after a "
                        f"damaged segment; recovery stops at the "
                        f"corruption point",
                        stacklevel=2,
                    )
            if self._bg is None:
                # Inline life after a background life: fold the
                # surviving segments into the single legacy WAL, which
                # is the only blob the inline flush path resets.  Each
                # segment carries its own file header, so the replayed
                # records are re-framed rather than byte-concatenated
                # (this also normalizes any v1/v2 format mix).
                if survivors and survivors != [self._wal_name]:
                    if self.checksum_kind is not ChecksumKind.NONE:
                        merged = wal_header(self.checksum_kind) + b"".join(
                            frame_record(record, self.checksum_kind)
                            for record in replayed_records
                        )
                    else:
                        merged = b"".join(
                            record.encode() for record in replayed_records
                        )
                    self.storage.write(self._wal_name, merged)
                    for name in survivors:
                        if name != self._wal_name:
                            self.storage.delete(name)
                self._wal_bytes = (
                    self.storage.size(self._wal_name)
                    if self.storage.exists(self._wal_name)
                    else 0
                )
            else:
                # The replayed records now live in the active memtable;
                # keep the surviving segments attached to it so they
                # are deleted together once it flushes.
                self._active_segments = survivors + self._active_segments
                total = 0
                for name in self._active_segments:
                    try:
                        size = self.storage.size(name)
                    except StorageError:
                        size = 0
                    self._segment_bytes[name] = size
                    total += size
                self._wal_bytes = total
        return replayed

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def storage_backend(self) -> Storage:
        return self.storage

    def scrub(self) -> ScrubReport:
        """Verify every persisted structure: WAL framing and checksums,
        plus each SSTable's blocks and pinned sections.

        A damaged WAL tail is repaired by truncation; SSTables with any
        damaged block are quarantined (removed from the tree) and their
        corrupt blocks counted unrecoverable.  Background workers are
        quiesced first so the scrub never races a half-written sstable.
        """
        self.quiesce()
        report = ScrubReport()
        with timed_scrub(report):
            if self.config.enable_wal:
                for name in self._wal_blob_names():
                    if not self.storage.exists(name):
                        continue
                    report.structures_checked += 1
                    buf = self.storage.read(name)
                    decoded = decode_wal(buf)
                    if decoded.truncated:
                        self.storage.write(name, buf[: decoded.valid_bytes])
                        report.add(
                            ScrubFinding(
                                name,
                                decoded.valid_bytes,
                                f"{decoded.corruption}; truncated to intact prefix",
                                repaired=True,
                            )
                        )
            corrupt_tables = []
            for level in self._levels:
                for table in level:
                    table_report = table.verify()
                    report.structures_checked += table_report.structures_checked
                    if not table_report.clean:
                        # One finding per damaged blob (matching the
                        # other engines' granularity), detailing how
                        # many of its blocks/sections failed.
                        first = table_report.findings[0]
                        report.add(
                            ScrubFinding(
                                table.blob_name,
                                first.offset,
                                f"{table_report.corruptions_detected} damaged "
                                f"structures (first: {first.detail})",
                            )
                        )
                        corrupt_tables.append(table)
            for table in corrupt_tables:
                self._quarantine_table(table)
                # _quarantine_table counts an ambient detection; the
                # finding was already added above, so undo the double
                # count.
                self.integrity.detected -= 1
        self.integrity.absorb(report)
        return report

    def _wal_blob_names(self) -> List[str]:
        """The WAL blobs a scrub must verify."""
        if self._bg is None:
            return [self._wal_name]
        with self._mutex:
            names = [
                name
                for segments in self._immutable_segments
                for name in segments
            ]
            names.extend(self._active_segments)
            return names

    def close(self) -> None:
        if self.closed:
            return
        bg = self._bg
        if bg is not None:
            try:
                self.quiesce()
            finally:
                bg.shutdown()
        super().close()

    def abandon(self) -> None:
        """Drop the store like a process kill: background workers stop
        at their next checkpoint without flushing or draining, leaving
        storage exactly as a crash would for :meth:`recover`."""
        bg = self._bg
        if bg is not None:
            bg.abandon()
        super().abandon()
