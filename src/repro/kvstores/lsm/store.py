"""RocksDB-like log-structured merge-tree store.

Implements the design traits the paper's evaluation leans on:

* writes land in a memtable after a WAL append; full memtables become
  immutable and are flushed to sorted runs (SSTables) in level 0
* ``merge`` appends a lazy operand -- O(1) at write time -- and the cost
  of combining operands is deferred to reads and compaction (this is why
  LSM stores win the paper's holistic-window workloads, Figure 13)
* leveled compaction: L0 runs may overlap; L1+ are sorted, disjoint runs
  compacted downward when a level outgrows its budget
* reads consult memtables, then L0 newest-to-oldest, then one file per
  deeper level, short-circuited by per-table bloom filters and served
  through a shared LRU block cache
"""

from __future__ import annotations

import heapq
import time
import warnings
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..api import (
    OP_DELETE,
    OP_MERGE,
    OP_PUT,
    AppendMergeOperator,
    BatchOp,
    KVStore,
    MergeOperator,
)
from ...obs import tracing
from ..cache import LRUCache
from ..integrity import (
    ChecksumKind,
    CorruptionError,
    ScrubFinding,
    ScrubReport,
    resolve_checksum_kind,
    timed_scrub,
)
from ..storage import MemoryStorage, Storage, StorageError
from .compaction import (
    CompactionStats,
    compact_records,
    merged_record_stream,
    pick_overlapping,
    split_into_runs,
)
from .memtable import Memtable
from .record import (
    Record,
    RecordKind,
    decode_wal,
    frame_record,
    frame_records,
    wal_header,
)
from .sstable import SSTable, build_sstable, open_sstable


@dataclass
class LSMConfig:
    """Tuning knobs, scaled for Python-sized workloads.

    The paper configures RocksDB with two 128 MB write buffers and a
    64 MB block cache; the defaults here keep the same proportions at
    1/1000 scale (128 KB buffers, 64 KB cache) so that 10^4-10^5-op
    runs exercise flushes and compactions the way the paper's 2M-op
    runs do.
    """

    write_buffer_size: int = 128 * 1024
    max_write_buffers: int = 2
    block_size: int = 4096
    block_cache_size: int = 64 * 1024
    bits_per_key: int = 10
    l0_compaction_trigger: int = 4
    max_levels: int = 7
    level_base_bytes: int = 1024 * 1024
    level_multiplier: int = 10
    target_file_size: int = 256 * 1024
    enable_wal: bool = True
    #: checksum algorithm for WAL frames and SSTable blocks:
    #: "crc32c", "crc32", "none" (legacy v1 formats), or None/"default"
    #: for the fastest available kind
    checksum: Optional[str] = None

    def max_level_bytes(self, level: int) -> int:
        """Byte budget of level ``level`` (level 1 is the base)."""
        return self.level_base_bytes * self.level_multiplier ** max(0, level - 1)


class RocksLSMStore(KVStore):
    """The RocksDB stand-in used throughout the evaluation."""

    name = "rocksdb"

    def __init__(
        self,
        config: Optional[LSMConfig] = None,
        merge_operator: Optional[MergeOperator] = None,
        storage: Optional[Storage] = None,
    ) -> None:
        super().__init__()
        self.config = config or LSMConfig()
        self.merge_operator = merge_operator or AppendMergeOperator()
        self.storage = storage if storage is not None else MemoryStorage()
        self.block_cache: LRUCache = LRUCache(
            self.config.block_cache_size, sizer=lambda blk: blk.size_bytes
        )
        self.compaction_stats = CompactionStats()
        self._memtable = Memtable()
        self._immutables: List[Memtable] = []
        self._levels: List[List[SSTable]] = [[] for _ in range(self.config.max_levels)]
        self._sequence = 0
        self._next_file_id = 0
        self._wal_name = "wal-current"
        self._wal_bytes = 0
        self._new_outputs: List[SSTable] = []
        self._background_ns = 0
        self.checksum_kind = resolve_checksum_kind(self.config.checksum)
        #: tables removed from the tree after failing a checksum
        self.quarantined: List[SSTable] = []
        if self.config.enable_wal and not self.storage.exists(self._wal_name):
            self._reset_wal()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self.stats.puts += 1
        self._write(Record(RecordKind.PUT, self._next_sequence(), key, value))

    def delete(self, key: bytes) -> None:
        self._check_open()
        self.stats.deletes += 1
        self._write(Record(RecordKind.DELETE, self._next_sequence(), key, b""))

    def merge(self, key: bytes, operand: bytes) -> None:
        self._check_open()
        self.stats.merges += 1
        self._write(Record(RecordKind.MERGE, self._next_sequence(), key, operand))

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    def apply_batch(self, ops: Sequence[BatchOp]) -> None:
        """Group commit: one checksummed WAL frame for the whole batch.

        Compared to N ``put``/``merge``/``delete`` calls, a batch pays
        the WAL framing, checksum call, storage append, and the
        flush-threshold check once, and makes a single pass over the
        memtable -- RocksDB's ``WriteBatch`` economics.  The frame is
        atomic on replay: a torn group frame drops the whole batch,
        never a prefix of it.
        """
        self._check_open()
        if not ops:
            return
        records: List[Record] = []
        append = records.append
        stats = self.stats
        sequence = self._sequence
        for opcode, key, value in ops:
            sequence += 1
            if opcode == OP_PUT:
                stats.puts += 1
                append(Record(RecordKind.PUT, sequence, key, value))
            elif opcode == OP_MERGE:
                stats.merges += 1
                append(Record(RecordKind.MERGE, sequence, key, value))
            elif opcode == OP_DELETE:
                stats.deletes += 1
                append(Record(RecordKind.DELETE, sequence, key, b""))
            else:
                raise ValueError(
                    f"apply_batch is write-only; cannot apply opcode {opcode}"
                )
        self._sequence = sequence
        if self.config.enable_wal:
            with tracing.span("lsm.wal_commit", records=len(records)) as sp:
                if self.checksum_kind is not ChecksumKind.NONE:
                    encoded = frame_records(records, self.checksum_kind)
                else:
                    encoded = b"".join(record.encode() for record in records)
                self.storage.append(self._wal_name, encoded)
                sp.add(bytes=len(encoded))
            self._wal_bytes += len(encoded)
            stats.bytes_written += len(encoded)
        self._memtable.add_all(records)
        if self._memtable.approximate_bytes >= self.config.write_buffer_size:
            self._rotate_memtable()
        self._note_batch_writes(len(records))

    def _note_batch_writes(self, count: int) -> None:
        """Hook for subclasses that account per-write work (Lethe's
        FADE counter); called once per applied batch."""

    def _reset_wal(self) -> None:
        """(Re)create the WAL holding only its format header."""
        header = (
            wal_header(self.checksum_kind)
            if self.checksum_kind is not ChecksumKind.NONE
            else b""
        )
        self.storage.write(self._wal_name, header)
        self._wal_bytes = 0

    def _write(self, record: Record) -> None:
        if self.config.enable_wal:
            if self.checksum_kind is not ChecksumKind.NONE:
                encoded = frame_record(record, self.checksum_kind)
            else:
                encoded = record.encode()
            self.storage.append(self._wal_name, encoded)
            self._wal_bytes += len(encoded)
            self.stats.bytes_written += len(encoded)
        self._memtable.add(record)
        if self._memtable.approximate_bytes >= self.config.write_buffer_size:
            self._rotate_memtable()

    def _rotate_memtable(self) -> None:
        if not self._memtable:
            return
        self._immutables.append(self._memtable)
        self._memtable = Memtable()
        if len(self._immutables) >= self.config.max_write_buffers:
            # Flush + any cascading compactions are background work in
            # RocksDB; track the time so latency reporting can exclude it.
            begin = time.perf_counter_ns()
            self._flush_immutables()
            self._background_ns += time.perf_counter_ns() - begin

    def take_background_ns(self) -> int:
        spent, self._background_ns = self._background_ns, 0
        return spent

    def _flush_immutables(self) -> None:
        while self._immutables:
            memtable = self._immutables.pop(0)
            self._flush_memtable(memtable)
        # Persist the level layout *before* truncating the WAL: a crash
        # in between must never leave data reachable from neither.
        self._write_manifest()
        if self.config.enable_wal:
            self._reset_wal()

    def _flush_memtable(self, memtable: Memtable) -> None:
        with tracing.span("lsm.flush", bytes=memtable.approximate_bytes) as sp:
            table = build_sstable(
                self._take_file_id(),
                memtable.sorted_records(),
                self.storage,
                block_size=self.config.block_size,
                bits_per_key=self.config.bits_per_key,
                checksum_kind=self.checksum_kind,
            )
            if table is None:
                return
            self._levels[0].append(table)
            self.stats.flushes += 1
            self.stats.bytes_written += table.data_size
            sp.add(sstable_bytes=table.data_size)
        self._maybe_compact()

    def flush(self) -> None:
        """Flush the active and immutable memtables to level 0."""
        if self._memtable:
            self._rotate_memtable()
        self._flush_immutables()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        self.stats.gets += 1
        return self._get_resolved(key)

    def multi_get(self, keys) -> List[Optional[bytes]]:
        """Vectored get: probe keys in sorted order.

        Sorting means keys that land in the same SSTable block hit the
        block cache back-to-back (one decode serves the whole cluster)
        and per-table bloom/index probes run with warm lookup state --
        the MultiGet locality trick.  Results come back in input order;
        duplicate keys are resolved once.
        """
        self._check_open()
        self.stats.gets += len(keys)
        resolve = self._get_resolved
        resolved = {key: resolve(key) for key in sorted(set(keys))}
        return [resolved[key] for key in keys]

    def _get_resolved(self, key: bytes) -> Optional[bytes]:
        operands: List[bytes] = []
        resolved, value = self._lookup_memtables(key, operands)
        if resolved:
            return value
        resolved, value = self._lookup_tables(key, operands)
        if resolved:
            return value
        if operands:
            # Operands were collected newest-first; apply oldest-first.
            return self.merge_operator.full_merge(None, tuple(reversed(operands)))
        return None

    def _lookup_memtables(
        self, key: bytes, operands: List[bytes]
    ) -> Tuple[bool, Optional[bytes]]:
        for memtable in [self._memtable] + list(reversed(self._immutables)):
            stack = memtable.lookup(key)
            if not stack:
                continue
            for record in reversed(stack):
                if record.kind is RecordKind.MERGE:
                    operands.append(record.value)
                elif record.kind is RecordKind.PUT:
                    return True, self._apply_operands(record.value, operands)
                else:  # DELETE
                    return True, self._apply_tombstone(operands)
        return False, None

    def _lookup_tables(
        self, key: bytes, operands: List[bytes]
    ) -> Tuple[bool, Optional[bytes]]:
        for table in reversed(self._levels[0]):
            resolved, value = self._scan_table_records(table, key, operands)
            if resolved:
                return True, value
        for level in self._levels[1:]:
            for table in level:
                if table.smallest_key <= key <= table.largest_key:
                    resolved, value = self._scan_table_records(table, key, operands)
                    if resolved:
                        return True, value
                    break  # disjoint level: only one file can hold the key
        return False, None

    def _scan_table_records(
        self, table: SSTable, key: bytes, operands: List[bytes]
    ) -> Tuple[bool, Optional[bytes]]:
        try:
            records = table.get_records(key, self.block_cache)
        except CorruptionError:
            # Fail-stop: never serve bytes from a damaged block.  The
            # table is quarantined so later reads of this key range go
            # to intact tables in deeper levels instead.
            self._quarantine_table(table)
            raise
        self.stats.bytes_read += sum(r.encoded_size for r in records)
        for record in reversed(records):
            if record.kind is RecordKind.MERGE:
                operands.append(record.value)
            elif record.kind is RecordKind.PUT:
                return True, self._apply_operands(record.value, operands)
            else:
                return True, self._apply_tombstone(operands)
        return False, None

    def _apply_operands(self, base: bytes, operands: List[bytes]) -> bytes:
        if not operands:
            return base
        return self.merge_operator.full_merge(base, tuple(reversed(operands)))

    def _apply_tombstone(self, operands: List[bytes]) -> Optional[bytes]:
        if not operands:
            return None
        return self.merge_operator.full_merge(None, tuple(reversed(operands)))

    def scan(self, start: bytes, end: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Merged ordered scan across memtables and all levels."""
        self._check_open()
        sources: List[List[Record]] = []
        for memtable in [self._memtable] + list(self._immutables):
            sources.append(
                [r for r in memtable.sorted_records() if start <= r.key < end]
            )
        for level in self._levels:
            for table in level:
                if table.overlaps(start, end):
                    sources.append(
                        [r for r in table.iter_records() if start <= r.key < end]
                    )
        merged = heapq.merge(*sources, key=lambda r: (r.key, r.sequence))
        current_key: Optional[bytes] = None
        bucket: List[Record] = []
        for record in merged:
            if record.key != current_key:
                if bucket:
                    value = self._resolve_bucket(bucket)
                    if value is not None:
                        yield current_key, value  # type: ignore[misc]
                current_key = record.key
                bucket = []
            bucket.append(record)
        if bucket and current_key is not None:
            value = self._resolve_bucket(bucket)
            if value is not None:
                yield current_key, value

    def _resolve_bucket(self, records: List[Record]) -> Optional[bytes]:
        operands: List[bytes] = []
        for record in sorted(records, key=lambda r: -r.sequence):
            if record.kind is RecordKind.MERGE:
                operands.append(record.value)
            elif record.kind is RecordKind.PUT:
                return self._apply_operands(record.value, operands)
            else:
                return self._apply_tombstone(operands)
        if operands:
            return self.merge_operator.full_merge(None, tuple(reversed(operands)))
        return None

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def _take_file_id(self) -> int:
        self._next_file_id += 1
        return self._next_file_id

    def _maybe_compact(self) -> None:
        if len(self._levels[0]) >= self.config.l0_compaction_trigger:
            self._compact_l0()
        for level in range(1, self.config.max_levels - 1):
            size = sum(t.data_size for t in self._levels[level])
            while size > self.config.max_level_bytes(level) and self._levels[level]:
                size -= self._compact_level(level)

    def _compact_l0(self) -> None:
        inputs = list(self._levels[0])
        if not inputs:
            return
        smallest = min(t.smallest_key for t in inputs)
        largest = max(t.largest_key for t in inputs)
        overlapping, disjoint = pick_overlapping(self._levels[1], smallest, largest)
        self._run_compaction(inputs + overlapping, from_levels=(0,), target_level=1)
        self._levels[0] = []
        self._levels[1] = self._sorted_level(disjoint + self._new_outputs)

    def _compact_level(self, level: int) -> int:
        """Compact one file from ``level`` into ``level + 1``.

        Returns the number of bytes removed from ``level``.
        """
        source = self._pick_compaction_file(level)
        if source is None:
            return 0
        overlapping, disjoint = pick_overlapping(
            self._levels[level + 1], source.smallest_key, source.largest_key
        )
        self._run_compaction(
            [source] + overlapping, from_levels=(level,), target_level=level + 1
        )
        self._levels[level] = [t for t in self._levels[level] if t is not source]
        self._levels[level + 1] = self._sorted_level(disjoint + self._new_outputs)
        return source.data_size

    def _pick_compaction_file(self, level: int) -> Optional[SSTable]:
        if not self._levels[level]:
            return None
        # Largest file first frees the most budget per compaction.
        return max(self._levels[level], key=lambda t: t.data_size)

    def _run_compaction(
        self, inputs: List[SSTable], from_levels: Tuple[int, ...], target_level: int
    ) -> None:
        with tracing.span(
            "lsm.compaction",
            level=target_level,
            inputs=len(inputs),
            bytes_in=sum(t.data_size for t in inputs),
        ):
            self._run_compaction_inner(inputs, target_level)

    def _run_compaction_inner(
        self, inputs: List[SSTable], target_level: int
    ) -> None:
        at_bottom = self._is_bottom(target_level, inputs)
        stream = merged_record_stream(inputs)
        compacted = compact_records(stream, self.merge_operator, at_bottom)
        outputs: List[SSTable] = []
        records_out = 0
        bytes_out = 0
        for run in split_into_runs(compacted, self.config.target_file_size):
            table = build_sstable(
                self._take_file_id(),
                iter(run),
                self.storage,
                block_size=self.config.block_size,
                bits_per_key=self.config.bits_per_key,
                checksum_kind=self.checksum_kind,
            )
            if table is not None:
                outputs.append(table)
                records_out += table.num_entries
                bytes_out += table.data_size
        tombstones_in = sum(t.num_tombstones for t in inputs)
        tombstones_out = sum(t.num_tombstones for t in outputs)
        self.compaction_stats.compactions += 1
        self.compaction_stats.records_in += sum(t.num_entries for t in inputs)
        self.compaction_stats.records_out += records_out
        self.compaction_stats.bytes_in += sum(t.data_size for t in inputs)
        self.compaction_stats.bytes_out += bytes_out
        self.compaction_stats.tombstones_dropped += max(
            0, tombstones_in - tombstones_out
        )
        self.stats.compactions += 1
        self.stats.bytes_read += sum(t.data_size for t in inputs)
        self.stats.bytes_written += bytes_out
        for table in inputs:
            table.drop(self.block_cache)
        self._new_outputs = outputs

    def _is_bottom(self, target_level: int, inputs: List[SSTable]) -> bool:
        if target_level >= self.config.max_levels - 1:
            return True
        input_ids = {t.file_id for t in inputs}
        for deeper in self._levels[target_level + 1 :]:
            if any(t.file_id not in input_ids for t in deeper):
                return False
        # Also nothing left in the target level beyond the inputs.
        return all(
            t.file_id in input_ids for t in self._levels[target_level]
        ) or not self._levels[target_level]

    @staticmethod
    def _sorted_level(tables: List[SSTable]) -> List[SSTable]:
        return sorted(tables, key=lambda t: t.smallest_key)

    # ------------------------------------------------------------------
    # Introspection / recovery
    # ------------------------------------------------------------------

    def _quarantine_table(self, table: SSTable) -> None:
        """Remove a corrupt table from the tree (blob left for forensics)."""
        self.integrity.detected += 1
        self.quarantined.append(table)
        for level_index, level in enumerate(self._levels):
            self._levels[level_index] = [t for t in level if t is not table]
        self.block_cache.invalidate_where(
            lambda ck: isinstance(ck, tuple) and ck[0] == table.file_id
        )
        if self.storage.exists(self._MANIFEST_NAME):
            self._write_manifest()

    def level_file_counts(self) -> List[int]:
        return [len(level) for level in self._levels]

    def total_data_bytes(self) -> int:
        return sum(t.data_size for level in self._levels for t in level)

    _MANIFEST_NAME = "manifest-current"

    def _write_manifest(self) -> None:
        """Persist the level layout (which SSTables live where)."""
        lines = []
        for level_index, level in enumerate(self._levels):
            for table in level:
                lines.append(f"{level_index} {table.file_id} {table.blob_name}")
        self.storage.write(self._MANIFEST_NAME, "\n".join(lines).encode())

    def recover(self) -> int:
        """Full crash recovery: reopen the manifest's SSTables, then
        replay the WAL.  Returns the number of WAL records replayed."""
        with tracing.span("lsm.recover_manifest"):
            self._recover_manifest()
        with tracing.span("lsm.recover_wal") as sp:
            replayed = self.recover_wal()
            sp.add(records=replayed)
        return replayed

    def _recover_manifest(self) -> None:
        if not self.storage.exists(self._MANIFEST_NAME):
            return
        manifest = self.storage.read(self._MANIFEST_NAME).decode()
        self._levels = [[] for _ in range(self.config.max_levels)]
        for line in manifest.splitlines():
            if not line.strip():
                continue
            level_str, file_id_str, blob_name = line.split(" ", 2)
            try:
                table = open_sstable(int(file_id_str), self.storage, blob_name)
            except (CorruptionError, StorageError) as exc:
                # A zero-length blob (interrupted flush) or damaged
                # table must not abort recovery of the healthy rest.
                warnings.warn(
                    f"skipping unreadable sstable {blob_name!r} during "
                    f"recovery: {exc}",
                    stacklevel=2,
                )
                self.integrity.detected += 1
                continue
            self._levels[int(level_str)].append(table)
            self._next_file_id = max(self._next_file_id, table.file_id)
            self._sequence = max(self._sequence, table.max_sequence)
        for level_index in range(1, self.config.max_levels):
            self._levels[level_index] = self._sorted_level(
                self._levels[level_index]
            )

    def recover_wal(self) -> int:
        """Replay the WAL into the memtable; returns records replayed.

        Used after simulated crashes: a fresh store pointed at the same
        storage rebuilds its unflushed writes.  Use :meth:`recover` for
        full recovery including flushed data.

        Replay is corruption-aware: it stops at the first torn or
        checksum-failing record, truncates the file to the intact
        prefix (counted as a detected + repaired corruption), and
        replays exactly the records before the damage.
        """
        if not self.config.enable_wal or not self.storage.exists(self._wal_name):
            return 0
        buf = self.storage.read(self._wal_name)
        decoded = decode_wal(buf)
        if decoded.truncated:
            self.integrity.detected += 1
            self.storage.write(self._wal_name, buf[: decoded.valid_bytes])
            self.integrity.repaired += 1
            warnings.warn(
                f"WAL corruption ({decoded.corruption}); truncated to "
                f"{decoded.valid_bytes} intact bytes",
                stacklevel=2,
            )
        replayed = 0
        for record in decoded.records:
            self._memtable.add(record)
            self._sequence = max(self._sequence, record.sequence)
            replayed += 1
        return replayed

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def storage_backend(self) -> Storage:
        return self.storage

    def scrub(self) -> ScrubReport:
        """Verify every persisted structure: WAL framing and checksums,
        plus each SSTable's blocks and pinned sections.

        A damaged WAL tail is repaired by truncation; SSTables with any
        damaged block are quarantined (removed from the tree) and their
        corrupt blocks counted unrecoverable.
        """
        report = ScrubReport()
        with timed_scrub(report):
            if self.config.enable_wal and self.storage.exists(self._wal_name):
                report.structures_checked += 1
                buf = self.storage.read(self._wal_name)
                decoded = decode_wal(buf)
                if decoded.truncated:
                    self.storage.write(self._wal_name, buf[: decoded.valid_bytes])
                    report.add(
                        ScrubFinding(
                            self._wal_name,
                            decoded.valid_bytes,
                            f"{decoded.corruption}; truncated to intact prefix",
                            repaired=True,
                        )
                    )
            corrupt_tables = []
            for level in self._levels:
                for table in level:
                    table_report = table.verify()
                    report.structures_checked += table_report.structures_checked
                    if not table_report.clean:
                        # One finding per damaged blob (matching the
                        # other engines' granularity), detailing how
                        # many of its blocks/sections failed.
                        first = table_report.findings[0]
                        report.add(
                            ScrubFinding(
                                table.blob_name,
                                first.offset,
                                f"{table_report.corruptions_detected} damaged "
                                f"structures (first: {first.detail})",
                            )
                        )
                        corrupt_tables.append(table)
            for table in corrupt_tables:
                self._quarantine_table(table)
                # _quarantine_table counts an ambient detection; the
                # finding was already added above, so undo the double
                # count.
                self.integrity.detected -= 1
        self.integrity.absorb(report)
        return report

    def close(self) -> None:
        if not self.closed:
            super().close()
