"""Sorted string table: the immutable on-disk run format of the LSM store.

Layout of an SSTable blob::

    [block 0][block 1]...[block N-1][bloom][index][footer]

* blocks -- back-to-back encoded :class:`~.record.Record`s, sorted by
  (key, sequence); split at ``block_size`` boundaries
* bloom  -- serialized Bloom filter over all keys in the table
* index  -- per-block (first_key, offset, length) entries
* footer -- offsets and lengths of the bloom and index sections

The index and bloom sections are pinned in memory per open table, like
RocksDB's pinned filter/index blocks; data blocks go through the shared
LRU block cache.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from ..cache import LRUCache
from ..storage import Storage
from .bloom import BloomFilter
from .record import Record, RecordKind, decode_all, decode_record

_FOOTER = struct.Struct("<QQQQ")  # bloom_off, bloom_len, index_off, index_len
_INDEX_ENTRY = struct.Struct("<IQI")  # key_len, offset, length

DEFAULT_BLOCK_SIZE = 4096


@dataclass(frozen=True)
class BlockHandle:
    first_key: bytes
    offset: int
    length: int


class ParsedBlock:
    """A decoded data block: parallel key/record arrays for binary search."""

    __slots__ = ("keys", "records", "size_bytes")

    def __init__(self, raw: bytes) -> None:
        self.records: List[Record] = list(decode_all(raw))
        self.keys: List[bytes] = [r.key for r in self.records]
        self.size_bytes = len(raw)

    def records_for(self, key: bytes) -> List[Record]:
        lo = bisect.bisect_left(self.keys, key)
        hi = bisect.bisect_right(self.keys, key)
        return self.records[lo:hi]


class SSTable:
    """An open, immutable sorted run."""

    def __init__(
        self,
        file_id: int,
        storage: Storage,
        blob_name: str,
        index: List[BlockHandle],
        bloom: BloomFilter,
        smallest_key: bytes,
        largest_key: bytes,
        num_entries: int,
        num_tombstones: int,
        oldest_tombstone_seq: Optional[int],
        data_size: int,
        max_sequence: int,
    ) -> None:
        self.file_id = file_id
        self._storage = storage
        self.blob_name = blob_name
        self._index = index
        self._index_keys = [h.first_key for h in index]
        self._bloom = bloom
        self.smallest_key = smallest_key
        self.largest_key = largest_key
        self.num_entries = num_entries
        self.num_tombstones = num_tombstones
        self.oldest_tombstone_seq = oldest_tombstone_seq
        self.data_size = data_size
        self.max_sequence = max_sequence

    # -- reads ------------------------------------------------------------

    def may_contain(self, key: bytes) -> bool:
        if key < self.smallest_key or key > self.largest_key:
            return False
        return self._bloom.may_contain(key)

    def get_records(
        self, key: bytes, block_cache: Optional[LRUCache] = None
    ) -> List[Record]:
        """All records (oldest-first) stored for ``key``."""
        if not self.may_contain(key):
            return []
        # Records for one key are contiguous but may straddle block
        # boundaries, so start from the block *before* the first block
        # whose first key equals ``key`` (it may end with ``key``).
        pos = max(0, bisect.bisect_left(self._index_keys, key) - 1)
        found: List[Record] = []
        # Records for one key may straddle a block boundary; walk forward
        # while the key can still appear.
        for handle in self._index[pos:]:
            if handle.first_key > key:
                break
            block = self._load_block(handle, block_cache)
            found.extend(block.records_for(key))
            if block.keys and block.keys[-1] > key:
                break
        return found

    def _load_block(
        self, handle: BlockHandle, block_cache: Optional[LRUCache]
    ) -> ParsedBlock:
        cache_key = (self.file_id, handle.offset)
        if block_cache is not None:
            cached = block_cache.get(cache_key)
            if cached is not None:
                return cached
        raw = self._storage.read_range(self.blob_name, handle.offset, handle.length)
        block = ParsedBlock(raw)
        if block_cache is not None:
            block_cache.put(cache_key, block)
        return block

    def iter_records(self) -> Iterator[Record]:
        """Sequential full scan (used by compaction)."""
        for handle in self._index:
            raw = self._storage.read_range(self.blob_name, handle.offset, handle.length)
            yield from decode_all(raw)

    def overlaps(self, smallest: bytes, largest: bytes) -> bool:
        return not (self.largest_key < smallest or self.smallest_key > largest)

    def drop(self, block_cache: Optional[LRUCache] = None) -> None:
        """Delete the backing blob and purge cached blocks."""
        self._storage.delete(self.blob_name)
        if block_cache is not None:
            block_cache.invalidate_where(
                lambda ck: isinstance(ck, tuple) and ck[0] == self.file_id
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SSTable(id={self.file_id}, entries={self.num_entries}, "
            f"range=[{self.smallest_key!r},{self.largest_key!r}])"
        )


def build_sstable(
    file_id: int,
    records: Iterable[Record],
    storage: Storage,
    block_size: int = DEFAULT_BLOCK_SIZE,
    bits_per_key: int = 10,
    blob_prefix: str = "sst",
) -> Optional[SSTable]:
    """Serialize sorted ``records`` into a new SSTable blob.

    ``records`` must already be sorted by (key, sequence).  Returns
    ``None`` when there are no records.
    """
    blocks: List[bytes] = []
    index: List[BlockHandle] = []
    current = bytearray()
    current_first: Optional[bytes] = None
    keys: List[bytes] = []
    num_entries = 0
    num_tombstones = 0
    oldest_tombstone_seq: Optional[int] = None
    smallest: Optional[bytes] = None
    largest: Optional[bytes] = None
    max_sequence = 0
    offset = 0

    def cut_block() -> None:
        nonlocal current, current_first, offset
        if not current:
            return
        raw = bytes(current)
        assert current_first is not None
        index.append(BlockHandle(current_first, offset, len(raw)))
        blocks.append(raw)
        offset += len(raw)
        current = bytearray()
        current_first = None

    for record in records:
        encoded = record.encode()
        if current and len(current) + len(encoded) > block_size:
            cut_block()
        if current_first is None:
            current_first = record.key
        current.extend(encoded)
        keys.append(record.key)
        num_entries += 1
        max_sequence = max(max_sequence, record.sequence)
        if record.kind is RecordKind.DELETE:
            num_tombstones += 1
            if oldest_tombstone_seq is None or record.sequence < oldest_tombstone_seq:
                oldest_tombstone_seq = record.sequence
        if smallest is None:
            smallest = record.key
        largest = record.key
    cut_block()

    if num_entries == 0:
        return None

    bloom = BloomFilter(len(set(keys)), bits_per_key)
    bloom.add_all(keys)

    data = b"".join(blocks)
    bloom_bytes = bloom.encode()
    index_parts = []
    for handle in index:
        index_parts.append(
            _INDEX_ENTRY.pack(len(handle.first_key), handle.offset, handle.length)
        )
        index_parts.append(handle.first_key)
    index_bytes = b"".join(index_parts)
    footer = _FOOTER.pack(
        len(data), len(bloom_bytes), len(data) + len(bloom_bytes), len(index_bytes)
    )
    blob_name = f"{blob_prefix}-{file_id:08d}"
    storage.write(blob_name, data + bloom_bytes + index_bytes + footer)

    assert smallest is not None and largest is not None
    return SSTable(
        file_id=file_id,
        storage=storage,
        blob_name=blob_name,
        index=index,
        bloom=bloom,
        smallest_key=smallest,
        largest_key=largest,
        num_entries=num_entries,
        num_tombstones=num_tombstones,
        oldest_tombstone_seq=oldest_tombstone_seq,
        data_size=len(data),
        max_sequence=max_sequence,
    )


def open_sstable(file_id: int, storage: Storage, blob_name: str) -> SSTable:
    """Re-open an SSTable from its blob (recovery path)."""
    blob = storage.read(blob_name)
    bloom_off, bloom_len, index_off, index_len = _FOOTER.unpack(blob[-_FOOTER.size :])
    bloom = BloomFilter.decode(blob[bloom_off : bloom_off + bloom_len])
    index: List[BlockHandle] = []
    pos = index_off
    end = index_off + index_len
    while pos < end:
        key_len, offset, length = _INDEX_ENTRY.unpack_from(blob, pos)
        pos += _INDEX_ENTRY.size
        first_key = bytes(blob[pos : pos + key_len])
        pos += key_len
        index.append(BlockHandle(first_key, offset, length))

    num_entries = 0
    num_tombstones = 0
    oldest_tombstone_seq: Optional[int] = None
    smallest: Optional[bytes] = None
    largest: Optional[bytes] = None
    max_sequence = 0
    for handle in index:
        raw = blob[handle.offset : handle.offset + handle.length]
        offset2 = 0
        while offset2 < len(raw):
            record, offset2 = decode_record(raw, offset2)
            num_entries += 1
            max_sequence = max(max_sequence, record.sequence)
            if record.kind is RecordKind.DELETE:
                num_tombstones += 1
                if (
                    oldest_tombstone_seq is None
                    or record.sequence < oldest_tombstone_seq
                ):
                    oldest_tombstone_seq = record.sequence
            if smallest is None:
                smallest = record.key
            largest = record.key
    if smallest is None or largest is None:
        raise ValueError(f"empty sstable blob: {blob_name}")
    return SSTable(
        file_id=file_id,
        storage=storage,
        blob_name=blob_name,
        index=index,
        bloom=bloom,
        smallest_key=smallest,
        largest_key=largest,
        num_entries=num_entries,
        num_tombstones=num_tombstones,
        oldest_tombstone_seq=oldest_tombstone_seq,
        data_size=bloom_off,
        max_sequence=max_sequence,
    )
