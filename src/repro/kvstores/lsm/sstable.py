"""Sorted string table: the immutable on-disk run format of the LSM store.

Layout of an SSTable blob::

    [block 0][block 1]...[block N-1][bloom][index][footer]

* blocks -- back-to-back encoded :class:`~.record.Record`s, sorted by
  (key, sequence); split at ``block_size`` boundaries
* bloom  -- serialized Bloom filter over all keys in the table
* index  -- per-block (first_key, offset, length) entries
* footer -- offsets and lengths of the bloom and index sections

The index and bloom sections are pinned in memory per open table, like
RocksDB's pinned filter/index blocks; data blocks go through the shared
LRU block cache.

Two footer formats exist:

* **v1 (legacy)** -- 32-byte ``<QQQQ`` footer, no checksums anywhere.
* **v2 (checksummed)** -- every data block carries a CRC in its index
  entry, the bloom and index sections carry CRCs in the footer, and
  the footer ends with the ``"GST2"`` magic plus the checksum kind.
  Reads verify the block CRC before parsing; a mismatch raises
  :class:`~repro.kvstores.integrity.CorruptionError` instead of ever
  returning garbage.  v1 files are still readable (their trailing four
  bytes are the always-zero high half of a ``uint64`` length, never
  the magic).
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from ..cache import LRUCache
from ..integrity import (
    DEFAULT_CHECKSUM_KIND,
    ChecksumKind,
    CorruptionError,
    ScrubFinding,
    ScrubReport,
    checksum,
    timed_scrub,
)
from ..storage import Storage
from .bloom import BloomFilter
from .record import Record, RecordKind, decode_all, decode_record

_FOOTER_V1 = struct.Struct("<QQQQ")  # bloom_off, bloom_len, index_off, index_len
# v1 fields + bloom_crc, index_crc, checksum kind, pad, magic
_FOOTER_V2 = struct.Struct("<QQQQIIB3s4s")
_INDEX_ENTRY_V1 = struct.Struct("<IQI")  # key_len, offset, length
_INDEX_ENTRY_V2 = struct.Struct("<IQII")  # key_len, offset, length, crc

SST_MAGIC = b"GST2"
DEFAULT_BLOCK_SIZE = 4096


@dataclass(frozen=True)
class BlockHandle:
    first_key: bytes
    offset: int
    length: int
    #: checksum of the raw block bytes (None for v1 tables)
    crc: Optional[int] = None


@dataclass(frozen=True)
class _Sections:
    """Where the bloom/index sections live, with their v2 checksums."""

    bloom_offset: int
    bloom_length: int
    index_offset: int
    index_length: int
    bloom_crc: Optional[int] = None
    index_crc: Optional[int] = None


class ParsedBlock:
    """A decoded data block: parallel key/record arrays for binary search."""

    __slots__ = ("keys", "records", "size_bytes")

    def __init__(self, raw: bytes, blob_name: str = "?", offset: int = 0) -> None:
        try:
            self.records: List[Record] = list(decode_all(raw))
        except (struct.error, ValueError) as exc:
            raise CorruptionError(
                blob_name, offset, f"undecodable block: {exc}"
            ) from None
        self.keys: List[bytes] = [r.key for r in self.records]
        self.size_bytes = len(raw)

    def records_for(self, key: bytes) -> List[Record]:
        lo = bisect.bisect_left(self.keys, key)
        hi = bisect.bisect_right(self.keys, key)
        return self.records[lo:hi]


class SSTable:
    """An open, immutable sorted run."""

    def __init__(
        self,
        file_id: int,
        storage: Storage,
        blob_name: str,
        index: List[BlockHandle],
        bloom: BloomFilter,
        smallest_key: bytes,
        largest_key: bytes,
        num_entries: int,
        num_tombstones: int,
        oldest_tombstone_seq: Optional[int],
        data_size: int,
        max_sequence: int,
        checksum_kind: ChecksumKind = ChecksumKind.NONE,
        sections: Optional[_Sections] = None,
    ) -> None:
        self.file_id = file_id
        self._storage = storage
        self.blob_name = blob_name
        self._index = index
        self._index_keys = [h.first_key for h in index]
        self._bloom = bloom
        self.smallest_key = smallest_key
        self.largest_key = largest_key
        self.num_entries = num_entries
        self.num_tombstones = num_tombstones
        self.oldest_tombstone_seq = oldest_tombstone_seq
        self.data_size = data_size
        self.max_sequence = max_sequence
        self.checksum_kind = checksum_kind
        self._sections = sections

    # -- reads ------------------------------------------------------------

    def may_contain(self, key: bytes) -> bool:
        if key < self.smallest_key or key > self.largest_key:
            return False
        return self._bloom.may_contain(key)

    def get_records(
        self, key: bytes, block_cache: Optional[LRUCache] = None
    ) -> List[Record]:
        """All records (oldest-first) stored for ``key``.

        Raises :class:`CorruptionError` if a consulted block fails its
        checksum -- wrong bytes are never returned.
        """
        if not self.may_contain(key):
            return []
        # Records for one key are contiguous but may straddle block
        # boundaries, so start from the block *before* the first block
        # whose first key equals ``key`` (it may end with ``key``).
        pos = max(0, bisect.bisect_left(self._index_keys, key) - 1)
        found: List[Record] = []
        # Records for one key may straddle a block boundary; walk forward
        # while the key can still appear.
        for handle in self._index[pos:]:
            if handle.first_key > key:
                break
            block = self._load_block(handle, block_cache)
            found.extend(block.records_for(key))
            if block.keys and block.keys[-1] > key:
                break
        return found

    def _load_block(
        self, handle: BlockHandle, block_cache: Optional[LRUCache]
    ) -> ParsedBlock:
        cache_key = (self.file_id, handle.offset)
        if block_cache is not None:
            cached = block_cache.get(cache_key)
            if cached is not None:
                return cached
        raw = self._storage.read_range(self.blob_name, handle.offset, handle.length)
        self._verify_block(handle, raw)
        block = ParsedBlock(raw, self.blob_name, handle.offset)
        if block_cache is not None:
            block_cache.put(cache_key, block)
        return block

    def _verify_block(self, handle: BlockHandle, raw: bytes) -> None:
        if len(raw) != handle.length:
            raise CorruptionError(
                self.blob_name,
                handle.offset,
                f"short block read ({len(raw)} of {handle.length} bytes)",
            )
        if handle.crc is not None:
            if checksum(raw, self.checksum_kind) != handle.crc:
                raise CorruptionError(
                    self.blob_name, handle.offset, "block checksum mismatch"
                )

    def iter_records(self) -> Iterator[Record]:
        """Sequential full scan (used by compaction)."""
        for handle in self._index:
            raw = self._storage.read_range(self.blob_name, handle.offset, handle.length)
            self._verify_block(handle, raw)
            yield from decode_all(raw)

    def overlaps(self, smallest: bytes, largest: bytes) -> bool:
        return not (self.largest_key < smallest or self.smallest_key > largest)

    def verify(self) -> ScrubReport:
        """Re-read and checksum every persisted byte of this table.

        Checks each data block against its CRC (or structurally for v1
        tables) plus the bloom and index sections; corrupt structures
        are unrecoverable at the table level (the caller quarantines
        the table and relies on redundancy in deeper levels).
        """
        report = ScrubReport()
        with timed_scrub(report):
            for handle in self._index:
                report.structures_checked += 1
                try:
                    raw = self._storage.read_range(
                        self.blob_name, handle.offset, handle.length
                    )
                    self._verify_block(handle, raw)
                    ParsedBlock(raw, self.blob_name, handle.offset)
                except CorruptionError as exc:
                    report.add(
                        ScrubFinding(self.blob_name, handle.offset, exc.detail)
                    )
                except Exception as exc:  # storage errors: missing blob, I/O
                    report.add(ScrubFinding(self.blob_name, handle.offset, str(exc)))
            if self._sections is not None:
                report.structures_checked += 2
                sections = self._sections
                for label, offset, length, crc in (
                    (
                        "bloom",
                        sections.bloom_offset,
                        sections.bloom_length,
                        sections.bloom_crc,
                    ),
                    (
                        "index",
                        sections.index_offset,
                        sections.index_length,
                        sections.index_crc,
                    ),
                ):
                    if crc is None:
                        continue
                    try:
                        raw = self._storage.read_range(self.blob_name, offset, length)
                    except Exception as exc:
                        report.add(ScrubFinding(self.blob_name, offset, str(exc)))
                        continue
                    if len(raw) != length or checksum(raw, self.checksum_kind) != crc:
                        report.add(
                            ScrubFinding(
                                self.blob_name,
                                offset,
                                f"{label} section checksum mismatch",
                            )
                        )
        return report

    def drop(self, block_cache: Optional[LRUCache] = None) -> None:
        """Delete the backing blob and purge cached blocks."""
        self._storage.delete(self.blob_name)
        if block_cache is not None:
            block_cache.invalidate_where(
                lambda ck: isinstance(ck, tuple) and ck[0] == self.file_id
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SSTable(id={self.file_id}, entries={self.num_entries}, "
            f"range=[{self.smallest_key!r},{self.largest_key!r}])"
        )


def build_sstable(
    file_id: int,
    records: Iterable[Record],
    storage: Storage,
    block_size: int = DEFAULT_BLOCK_SIZE,
    bits_per_key: int = 10,
    blob_prefix: str = "sst",
    checksum_kind: ChecksumKind = DEFAULT_CHECKSUM_KIND,
    cooperate=None,
) -> Optional[SSTable]:
    """Serialize sorted ``records`` into a new SSTable blob.

    ``records`` must already be sorted by (key, sequence).  Returns
    ``None`` when there are no records.  ``checksum_kind`` NONE writes
    the legacy v1 format byte-for-byte.  ``cooperate``, when given, is
    called between chunks of the bloom-filter build -- the one long
    loop that runs after the record stream is exhausted -- so a
    background worker can periodically yield the interpreter to
    foreground writers instead of holding it for a multi-millisecond
    stretch on large tables.
    """
    blocks: List[bytes] = []
    index: List[BlockHandle] = []
    current = bytearray()
    current_first: Optional[bytes] = None
    keys: List[bytes] = []
    num_entries = 0
    num_tombstones = 0
    oldest_tombstone_seq: Optional[int] = None
    smallest: Optional[bytes] = None
    largest: Optional[bytes] = None
    max_sequence = 0
    offset = 0
    checksummed = checksum_kind is not ChecksumKind.NONE

    def cut_block() -> None:
        nonlocal current, current_first, offset
        if not current:
            return
        raw = bytes(current)
        assert current_first is not None
        crc = checksum(raw, checksum_kind) if checksummed else None
        index.append(BlockHandle(current_first, offset, len(raw), crc))
        blocks.append(raw)
        offset += len(raw)
        current = bytearray()
        current_first = None

    for record in records:
        encoded = record.encode()
        if current and len(current) + len(encoded) > block_size:
            cut_block()
        if current_first is None:
            current_first = record.key
        current.extend(encoded)
        keys.append(record.key)
        num_entries += 1
        max_sequence = max(max_sequence, record.sequence)
        if record.kind is RecordKind.DELETE:
            num_tombstones += 1
            if oldest_tombstone_seq is None or record.sequence < oldest_tombstone_seq:
                oldest_tombstone_seq = record.sequence
        if smallest is None:
            smallest = record.key
        largest = record.key
    cut_block()

    if num_entries == 0:
        return None

    bloom = BloomFilter(len(set(keys)), bits_per_key)
    if cooperate is None:
        bloom.add_all(keys)
    else:
        for start in range(0, len(keys), 256):
            bloom.add_all(keys[start:start + 256])
            cooperate()

    data = b"".join(blocks)
    bloom_bytes = bloom.encode()
    index_entry = _INDEX_ENTRY_V2 if checksummed else _INDEX_ENTRY_V1
    index_parts = []
    for handle in index:
        if checksummed:
            index_parts.append(
                index_entry.pack(
                    len(handle.first_key), handle.offset, handle.length, handle.crc
                )
            )
        else:
            index_parts.append(
                index_entry.pack(len(handle.first_key), handle.offset, handle.length)
            )
        index_parts.append(handle.first_key)
    index_bytes = b"".join(index_parts)
    sections: Optional[_Sections] = None
    if checksummed:
        bloom_crc = checksum(bloom_bytes, checksum_kind)
        index_crc = checksum(index_bytes, checksum_kind)
        footer = _FOOTER_V2.pack(
            len(data),
            len(bloom_bytes),
            len(data) + len(bloom_bytes),
            len(index_bytes),
            bloom_crc,
            index_crc,
            int(checksum_kind),
            b"\x00" * 3,
            SST_MAGIC,
        )
        sections = _Sections(
            len(data),
            len(bloom_bytes),
            len(data) + len(bloom_bytes),
            len(index_bytes),
            bloom_crc,
            index_crc,
        )
    else:
        footer = _FOOTER_V1.pack(
            len(data), len(bloom_bytes), len(data) + len(bloom_bytes), len(index_bytes)
        )
    blob_name = f"{blob_prefix}-{file_id:08d}"
    storage.write(blob_name, data + bloom_bytes + index_bytes + footer)

    assert smallest is not None and largest is not None
    return SSTable(
        file_id=file_id,
        storage=storage,
        blob_name=blob_name,
        index=index,
        bloom=bloom,
        smallest_key=smallest,
        largest_key=largest,
        num_entries=num_entries,
        num_tombstones=num_tombstones,
        oldest_tombstone_seq=oldest_tombstone_seq,
        data_size=len(data),
        max_sequence=max_sequence,
        checksum_kind=checksum_kind,
        sections=sections,
    )


def open_sstable(file_id: int, storage: Storage, blob_name: str) -> SSTable:
    """Re-open an SSTable from its blob (recovery path).

    Detects the footer format, verifies the bloom/index section
    checksums (v2), and validates every data block while rebuilding the
    table statistics.  Truncated or damaged blobs raise
    :class:`CorruptionError` rather than ``struct.error``.
    """
    blob = storage.read(blob_name)
    if len(blob) >= _FOOTER_V2.size and blob[-4:] == SST_MAGIC:
        (
            bloom_off,
            bloom_len,
            index_off,
            index_len,
            bloom_crc,
            index_crc,
            kind_value,
            _,
            _,
        ) = _FOOTER_V2.unpack(blob[-_FOOTER_V2.size :])
        try:
            kind = ChecksumKind(kind_value)
        except ValueError:
            raise CorruptionError(
                blob_name, len(blob) - _FOOTER_V2.size,
                f"unknown checksum kind {kind_value}",
            ) from None
        sections: Optional[_Sections] = _Sections(
            bloom_off, bloom_len, index_off, index_len, bloom_crc, index_crc
        )
        index_entry = _INDEX_ENTRY_V2
    elif len(blob) >= _FOOTER_V1.size:
        bloom_off, bloom_len, index_off, index_len = _FOOTER_V1.unpack(
            blob[-_FOOTER_V1.size :]
        )
        kind = ChecksumKind.NONE
        sections = None
        index_entry = _INDEX_ENTRY_V1
    else:
        raise CorruptionError(
            blob_name, 0, f"truncated sstable ({len(blob)} bytes, no footer)"
        )

    if index_off + index_len > len(blob) or bloom_off + bloom_len > len(blob):
        raise CorruptionError(blob_name, 0, "footer sections exceed blob size")
    bloom_bytes = blob[bloom_off : bloom_off + bloom_len]
    index_bytes = blob[index_off : index_off + index_len]
    if sections is not None:
        if checksum(bytes(bloom_bytes), kind) != sections.bloom_crc:
            raise CorruptionError(blob_name, bloom_off, "bloom section checksum mismatch")
        if checksum(bytes(index_bytes), kind) != sections.index_crc:
            raise CorruptionError(blob_name, index_off, "index section checksum mismatch")

    try:
        bloom = BloomFilter.decode(bloom_bytes)
    except CorruptionError as exc:
        # Re-anchor the bloom's own validation failure at this blob.
        raise CorruptionError(blob_name, bloom_off, f"undecodable bloom: {exc.detail}") from None
    except (struct.error, ValueError) as exc:
        raise CorruptionError(blob_name, bloom_off, f"undecodable bloom: {exc}") from None

    index: List[BlockHandle] = []
    pos = index_off
    end = index_off + index_len
    try:
        while pos < end:
            if index_entry is _INDEX_ENTRY_V2:
                key_len, offset, length, crc = index_entry.unpack_from(blob, pos)
            else:
                key_len, offset, length = index_entry.unpack_from(blob, pos)
                crc = None
            pos += index_entry.size
            first_key = bytes(blob[pos : pos + key_len])
            pos += key_len
            index.append(BlockHandle(first_key, offset, length, crc))
    except struct.error as exc:
        raise CorruptionError(blob_name, pos, f"undecodable index: {exc}") from None

    num_entries = 0
    num_tombstones = 0
    oldest_tombstone_seq: Optional[int] = None
    smallest: Optional[bytes] = None
    largest: Optional[bytes] = None
    max_sequence = 0
    for handle in index:
        raw = blob[handle.offset : handle.offset + handle.length]
        if len(raw) != handle.length:
            raise CorruptionError(blob_name, handle.offset, "block exceeds blob size")
        if handle.crc is not None and checksum(bytes(raw), kind) != handle.crc:
            raise CorruptionError(blob_name, handle.offset, "block checksum mismatch")
        offset2 = 0
        try:
            while offset2 < len(raw):
                record, offset2 = decode_record(raw, offset2)
                num_entries += 1
                max_sequence = max(max_sequence, record.sequence)
                if record.kind is RecordKind.DELETE:
                    num_tombstones += 1
                    if (
                        oldest_tombstone_seq is None
                        or record.sequence < oldest_tombstone_seq
                    ):
                        oldest_tombstone_seq = record.sequence
                if smallest is None:
                    smallest = record.key
                largest = record.key
        except (struct.error, ValueError) as exc:
            raise CorruptionError(
                blob_name, handle.offset + offset2, f"undecodable block: {exc}"
            ) from None
    if smallest is None or largest is None:
        raise CorruptionError(blob_name, 0, "empty sstable blob")
    return SSTable(
        file_id=file_id,
        storage=storage,
        blob_name=blob_name,
        index=index,
        bloom=bloom,
        smallest_key=smallest,
        largest_key=largest,
        num_entries=num_entries,
        num_tombstones=num_tombstones,
        oldest_tombstone_seq=oldest_tombstone_seq,
        data_size=bloom_off,
        max_sequence=max_sequence,
        checksum_kind=kind,
        sections=sections,
    )
