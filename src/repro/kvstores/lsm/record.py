"""On-disk record encoding shared by the WAL, memtable flush, and SSTables.

Every record is ``(kind, sequence, key, value)``:

* ``kind`` -- PUT, DELETE (tombstone), or MERGE (lazy operand)
* ``sequence`` -- monotonically increasing write sequence number used to
  order records for the same key during reads and compaction
* wire format: ``kind:1 | seq:8 | klen:4 | vlen:4 | key | value``
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator, Tuple


class RecordKind(IntEnum):
    PUT = 0
    DELETE = 1
    MERGE = 2


_HEADER = struct.Struct("<BQII")
HEADER_SIZE = _HEADER.size


@dataclass(frozen=True)
class Record:
    kind: RecordKind
    sequence: int
    key: bytes
    value: bytes

    def encode(self) -> bytes:
        return (
            _HEADER.pack(self.kind, self.sequence, len(self.key), len(self.value))
            + self.key
            + self.value
        )

    @property
    def encoded_size(self) -> int:
        return HEADER_SIZE + len(self.key) + len(self.value)


def decode_record(buf: bytes, offset: int = 0) -> Tuple[Record, int]:
    """Decode one record at ``offset``; return ``(record, next_offset)``."""
    kind, sequence, klen, vlen = _HEADER.unpack_from(buf, offset)
    start = offset + HEADER_SIZE
    key = bytes(buf[start : start + klen])
    value = bytes(buf[start + klen : start + klen + vlen])
    return Record(RecordKind(kind), sequence, key, value), start + klen + vlen


def decode_all(buf: bytes) -> Iterator[Record]:
    """Decode back-to-back records from ``buf``."""
    offset = 0
    end = len(buf)
    while offset < end:
        record, offset = decode_record(buf, offset)
        yield record
