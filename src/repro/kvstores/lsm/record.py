"""On-disk record encoding shared by the WAL, memtable flush, and SSTables.

Every record is ``(kind, sequence, key, value)``:

* ``kind`` -- PUT, DELETE (tombstone), or MERGE (lazy operand)
* ``sequence`` -- monotonically increasing write sequence number used to
  order records for the same key during reads and compaction
* wire format: ``kind:1 | seq:8 | klen:4 | vlen:4 | key | value``

WAL files come in two formats:

* **v1 (legacy)** -- back-to-back raw records, no header.  Truncation
  mid-record is detectable structurally; bit flips are not.
* **v2 (checksummed)** -- an 8-byte file header
  (``"GWAL" | version | checksum-kind | pad``) followed by framed
  records: ``crc:4 | len:4 | record``.  The CRC covers the record
  payload, so replay can truncate at the first damaged frame instead
  of deserializing garbage.  v1 files never start with ``"G"`` (the
  first byte of a record is its kind, 0--2), so readers dispatch on
  the magic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterator, List, NamedTuple, Optional, Sequence, Tuple

from ..integrity import ChecksumKind, checksum


class RecordKind(IntEnum):
    PUT = 0
    DELETE = 1
    MERGE = 2


_HEADER = struct.Struct("<BQII")
HEADER_SIZE = _HEADER.size


class Record(NamedTuple):
    # A NamedTuple rather than a frozen dataclass: record construction
    # sits on the write, WAL-replay, and compaction hot paths, and
    # tuple construction skips the object.__setattr__ per field that
    # frozen dataclasses pay.
    kind: RecordKind
    sequence: int
    key: bytes
    value: bytes

    def encode(self) -> bytes:
        return (
            _HEADER.pack(self.kind, self.sequence, len(self.key), len(self.value))
            + self.key
            + self.value
        )

    @property
    def encoded_size(self) -> int:
        return HEADER_SIZE + len(self.key) + len(self.value)


def decode_record(buf: bytes, offset: int = 0) -> Tuple[Record, int]:
    """Decode one record at ``offset``; return ``(record, next_offset)``."""
    kind, sequence, klen, vlen = _HEADER.unpack_from(buf, offset)
    start = offset + HEADER_SIZE
    key = bytes(buf[start : start + klen])
    value = bytes(buf[start + klen : start + klen + vlen])
    return Record(RecordKind(kind), sequence, key, value), start + klen + vlen


def decode_all(buf: bytes) -> Iterator[Record]:
    """Decode back-to-back records from ``buf``."""
    offset = 0
    end = len(buf)
    while offset < end:
        record, offset = decode_record(buf, offset)
        yield record


# ---------------------------------------------------------------------------
# WAL framing (v2, checksummed)
# ---------------------------------------------------------------------------

WAL_MAGIC = b"GWAL"
WAL_VERSION = 2
_WAL_HEADER = struct.Struct("<4sBBH")  # magic, version, checksum kind, pad
WAL_HEADER_SIZE = _WAL_HEADER.size
_FRAME = struct.Struct("<II")  # crc32 of payload, payload length


def wal_header(kind: ChecksumKind) -> bytes:
    """The file header starting every v2 WAL."""
    return _WAL_HEADER.pack(WAL_MAGIC, WAL_VERSION, int(kind), 0)


def frame_record(record: Record, kind: ChecksumKind) -> bytes:
    """Frame one record for a v2 WAL append."""
    payload = record.encode()
    return _FRAME.pack(checksum(payload, kind), len(payload)) + payload


def frame_records(records: Sequence[Record], kind: ChecksumKind) -> bytes:
    """Frame a whole write batch as ONE v2 WAL frame (group commit).

    The frame payload is the back-to-back encoding of every record in
    the batch, covered by a single CRC.  Replay decodes all of them
    (:func:`decode_wal` walks records inside each frame), and the frame
    is atomic: a torn or bit-flipped group frame drops the whole batch,
    never a partial one -- the group-commit durability contract.
    """
    payload = b"".join(record.encode() for record in records)
    return _FRAME.pack(checksum(payload, kind), len(payload)) + payload


@dataclass
class WalDecodeResult:
    """Outcome of a defensive WAL decode.

    ``valid_bytes`` is the prefix length (header included) holding only
    intact records; rewriting the file to that prefix repairs a torn or
    bit-flipped tail.
    """

    records: List[Record] = field(default_factory=list)
    valid_bytes: int = 0
    version: int = 1
    truncated: bool = False
    #: human-readable reason the decode stopped early (None when clean)
    corruption: Optional[str] = None


def decode_wal(buf: bytes) -> WalDecodeResult:
    """Decode a WAL of either format, stopping at the first damage.

    Never raises for corrupt input: replay consumes ``records`` (the
    recoverable prefix) and recovery truncates the file to
    ``valid_bytes``.
    """
    if buf[:4] == WAL_MAGIC:
        return _decode_wal_v2(buf)
    return _decode_wal_v1(buf)


def _decode_wal_v2(buf: bytes) -> WalDecodeResult:
    _, version, kind_value, _ = _WAL_HEADER.unpack_from(buf, 0)
    result = WalDecodeResult(valid_bytes=WAL_HEADER_SIZE, version=version)
    try:
        kind = ChecksumKind(kind_value)
    except ValueError:
        result.truncated = True
        result.corruption = f"unknown checksum kind {kind_value}"
        return result
    offset = WAL_HEADER_SIZE
    end = len(buf)
    while offset < end:
        if offset + _FRAME.size > end:
            result.truncated = True
            result.corruption = f"torn frame header at offset {offset}"
            return result
        crc, length = _FRAME.unpack_from(buf, offset)
        start = offset + _FRAME.size
        if start + length > end:
            result.truncated = True
            result.corruption = f"torn record at offset {offset}"
            return result
        payload = bytes(buf[start : start + length])
        if checksum(payload, kind) != crc:
            result.truncated = True
            result.corruption = f"checksum mismatch at offset {offset}"
            return result
        # A frame holds one record (per-op append) or a whole write
        # batch (group commit); decode every record it contains.
        frame_records_: List[Record] = []
        try:
            consumed = 0
            while consumed < length:
                record, consumed = decode_record(payload, consumed)
                frame_records_.append(record)
            if consumed != length:
                raise ValueError("trailing bytes inside frame")
        except (struct.error, ValueError) as exc:
            # A frame whose checksum passes but whose payload does not
            # parse means the frame was written damaged.
            result.truncated = True
            result.corruption = f"undecodable record at offset {offset}: {exc}"
            return result
        result.records.extend(frame_records_)
        offset = start + length
        result.valid_bytes = offset
    return result


def _decode_wal_v1(buf: bytes) -> WalDecodeResult:
    """Legacy WAL: structural validation only (no checksums)."""
    result = WalDecodeResult(version=1)
    offset = 0
    end = len(buf)
    while offset < end:
        if offset + HEADER_SIZE > end:
            result.truncated = True
            result.corruption = f"torn record header at offset {offset}"
            return result
        kind, sequence, klen, vlen = _HEADER.unpack_from(buf, offset)
        start = offset + HEADER_SIZE
        if kind not in (0, 1, 2) or start + klen + vlen > end:
            result.truncated = True
            result.corruption = f"torn or invalid record at offset {offset}"
            return result
        key = bytes(buf[start : start + klen])
        value = bytes(buf[start + klen : start + klen + vlen])
        result.records.append(Record(RecordKind(kind), sequence, key, value))
        offset = start + klen + vlen
        result.valid_bytes = offset
    return result
