"""Lethe: a delete-aware LSM variant (Sarkar et al., SIGMOD '20).

Lethe's FADE mechanism bounds how long tombstones linger: every file
carries the age of its oldest tombstone, and files whose tombstones
exceed a *delete persistence threshold* are compacted preferentially so
deletes reach the bottom of the tree (and disappear) in bounded time.
The paper benchmarks Lethe with a 10 s threshold.

This implementation layers FADE onto :class:`RocksLSMStore`:

* each SSTable holding tombstones is stamped with the (logical) time
  its oldest tombstone entered the tree; compaction outputs inherit the
  oldest stamp of their inputs
* every ``fade_check_interval`` writes, files with expired tombstones
  are compacted toward the bottom, oldest stamp first
* ordinary size-triggered compaction picks the file with the most
  tombstones instead of the largest file
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..api import MergeOperator
from ..storage import Storage
from .sstable import SSTable
from .store import LSMConfig, RocksLSMStore


@dataclass
class LetheConfig(LSMConfig):
    """LSM knobs plus FADE parameters."""

    delete_persistence_threshold_s: float = 10.0
    fade_check_interval: int = 2000


class LetheStore(RocksLSMStore):
    name = "lethe"

    def __init__(
        self,
        config: Optional[LetheConfig] = None,
        merge_operator: Optional[MergeOperator] = None,
        storage: Optional[Storage] = None,
        clock=time.monotonic,
    ) -> None:
        self._tombstone_stamp: Dict[int, float] = {}
        self._clock = clock
        self._writes_since_fade = 0
        self.fade_compactions = 0
        super().__init__(config or LetheConfig(), merge_operator, storage)

    @property
    def lethe_config(self) -> LetheConfig:
        return self.config  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Hooks into the base store
    # ------------------------------------------------------------------

    def _write(self, record) -> None:
        super()._write(record)
        self._writes_since_fade += 1
        if self._writes_since_fade >= self.lethe_config.fade_check_interval:
            self._writes_since_fade = 0
            begin = time.perf_counter_ns()
            self._enforce_delete_persistence()
            self._write_manifest()  # FADE reshapes levels outside flushes
            self._background_ns += time.perf_counter_ns() - begin

    def _note_batch_writes(self, count: int) -> None:
        # Group-committed batches bypass the per-record _write hook;
        # account every member so FADE cadence matches per-op replay.
        self._writes_since_fade += count
        if self._writes_since_fade >= self.lethe_config.fade_check_interval:
            self._writes_since_fade = 0
            begin = time.perf_counter_ns()
            self._enforce_delete_persistence()
            self._write_manifest()  # FADE reshapes levels outside flushes
            self._background_ns += time.perf_counter_ns() - begin

    def _flush_memtable(self, memtable) -> None:
        before = {t.file_id for level in self._levels for t in level}
        super()._flush_memtable(memtable)
        now = self._clock()
        for level in self._levels:
            for table in level:
                if table.file_id not in before and table.num_tombstones:
                    self._tombstone_stamp.setdefault(table.file_id, now)

    def _run_compaction(self, inputs, from_levels, target_level) -> None:
        inherited = [
            self._tombstone_stamp[t.file_id]
            for t in inputs
            if t.file_id in self._tombstone_stamp
        ]
        for table in inputs:
            self._tombstone_stamp.pop(table.file_id, None)
        super()._run_compaction(inputs, from_levels, target_level)
        if inherited:
            oldest = min(inherited)
            for table in self._new_outputs:
                if table.num_tombstones:
                    self._tombstone_stamp[table.file_id] = oldest

    def _pick_compaction_file(self, level: int) -> Optional[SSTable]:
        candidates = self._levels[level]
        if not candidates:
            return None
        with_tombstones = [t for t in candidates if t.num_tombstones]
        if with_tombstones:
            return max(with_tombstones, key=lambda t: t.num_tombstones)
        return super()._pick_compaction_file(level)

    # ------------------------------------------------------------------
    # FADE
    # ------------------------------------------------------------------

    def expired_tombstone_files(self) -> List[Tuple[int, SSTable]]:
        """(level, table) pairs whose tombstones exceeded the threshold."""
        now = self._clock()
        threshold = self.lethe_config.delete_persistence_threshold_s
        expired = []
        for level_idx, level in enumerate(self._levels[:-1]):
            for table in level:
                stamp = self._tombstone_stamp.get(table.file_id)
                if stamp is not None and now - stamp >= threshold:
                    expired.append((level_idx, table))
        expired.sort(key=lambda pair: self._tombstone_stamp[pair[1].file_id])
        return expired

    def _enforce_delete_persistence(self) -> None:
        for level_idx, table in self.expired_tombstone_files():
            # The tree may have changed since the scan; re-check residency.
            if table not in self._levels[level_idx]:
                continue
            if level_idx == 0:
                self._compact_l0()
            else:
                self._compact_single_file(level_idx, table)
            self.fade_compactions += 1

    def _compact_single_file(self, level: int, source: SSTable) -> None:
        from .compaction import pick_overlapping

        overlapping, disjoint = pick_overlapping(
            self._levels[level + 1], source.smallest_key, source.largest_key
        )
        self._run_compaction(
            [source] + overlapping, from_levels=(level,), target_level=level + 1
        )
        self._levels[level] = [t for t in self._levels[level] if t is not source]
        self._levels[level + 1] = self._sorted_level(disjoint + self._new_outputs)
