"""Lethe: a delete-aware LSM variant (Sarkar et al., SIGMOD '20).

Lethe's FADE mechanism bounds how long tombstones linger: every file
carries the age of its oldest tombstone, and files whose tombstones
exceed a *delete persistence threshold* are compacted preferentially so
deletes reach the bottom of the tree (and disappear) in bounded time.
The paper benchmarks Lethe with a 10 s threshold.

This implementation layers FADE onto :class:`RocksLSMStore`:

* each SSTable holding tombstones is stamped with the (logical) time
  its oldest tombstone entered the tree; compaction outputs inherit the
  oldest stamp of their inputs
* every ``fade_check_interval`` writes, files with expired tombstones
  are compacted toward the bottom, oldest stamp first -- inline on the
  write path, or handed to the compaction worker in background mode
* ordinary size-triggered compaction picks the file with the most
  tombstones instead of the largest file

FADE's single-file compactions assume disjoint levels, so Lethe only
runs with the leveled compaction policy; tiered/universal configs are
rejected at construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..api import MergeOperator
from ..storage import Storage
from .policies import CompactionTask
from .sstable import SSTable
from .store import LSMConfig, RocksLSMStore


@dataclass
class LetheConfig(LSMConfig):
    """LSM knobs plus FADE parameters."""

    delete_persistence_threshold_s: float = 10.0
    fade_check_interval: int = 2000


class LetheStore(RocksLSMStore):
    name = "lethe"

    def __init__(
        self,
        config: Optional[LetheConfig] = None,
        merge_operator: Optional[MergeOperator] = None,
        storage: Optional[Storage] = None,
        clock=time.monotonic,
    ) -> None:
        self._tombstone_stamp: Dict[int, float] = {}
        self._clock = clock
        self._writes_since_fade = 0
        self.fade_compactions = 0
        super().__init__(config or LetheConfig(), merge_operator, storage)

    @property
    def lethe_config(self) -> LetheConfig:
        return self.config  # type: ignore[return-value]

    def _validate_policy(self) -> None:
        if self._policy.overlapping_runs:
            # FADE compacts one file against the (disjoint) next level;
            # under overlapping runs that would produce runs whose
            # sequence intervals interleave, breaking newest-first reads.
            raise ValueError(
                f"lethe's FADE requires the leveled compaction policy, "
                f"got {self._policy.name!r}"
            )

    # ------------------------------------------------------------------
    # Hooks into the base store
    # ------------------------------------------------------------------

    def _write(self, record) -> None:
        super()._write(record)
        self._writes_since_fade += 1
        if self._writes_since_fade >= self.lethe_config.fade_check_interval:
            self._writes_since_fade = 0
            self._request_fade()

    def _note_batch_writes(self, count: int) -> None:
        # Group-committed batches bypass the per-record _write hook;
        # account every member so FADE cadence matches per-op replay.
        self._writes_since_fade += count
        if self._writes_since_fade >= self.lethe_config.fade_check_interval:
            self._writes_since_fade = 0
            self._request_fade()

    def _request_fade(self) -> None:
        """Run a FADE pass inline, or queue it for the compaction
        worker in background mode."""
        if self._bg is not None:
            self._bg.request_fade()
            return
        begin = time.perf_counter_ns()
        self._run_fade()
        self._add_background_ns(time.perf_counter_ns() - begin)

    def _run_fade(self) -> None:
        self._enforce_delete_persistence()
        with self._mutex:
            self._write_manifest()  # FADE reshapes levels outside flushes

    def _note_flushed_table(self, table: SSTable) -> None:
        # Called under the tree mutex whenever a flush lands in L0:
        # stamp the moment its tombstones entered the tree.
        if table.num_tombstones:
            self._tombstone_stamp.setdefault(table.file_id, self._clock())

    def _run_compaction(self, inputs, from_levels, target_level) -> None:
        inherited = [
            self._tombstone_stamp[t.file_id]
            for t in inputs
            if t.file_id in self._tombstone_stamp
        ]
        for table in inputs:
            self._tombstone_stamp.pop(table.file_id, None)
        super()._run_compaction(inputs, from_levels, target_level)
        if inherited:
            oldest = min(inherited)
            for table in self._new_outputs:
                if table.num_tombstones:
                    self._tombstone_stamp[table.file_id] = oldest

    def _discard_compaction_outputs(self, outputs: List[SSTable]) -> None:
        for table in outputs:
            self._tombstone_stamp.pop(table.file_id, None)

    def _pick_compaction_file(self, level: int) -> Optional[SSTable]:
        candidates = self._levels[level]
        if not candidates:
            return None
        with_tombstones = [t for t in candidates if t.num_tombstones]
        if with_tombstones:
            return max(with_tombstones, key=lambda t: t.num_tombstones)
        return super()._pick_compaction_file(level)

    # ------------------------------------------------------------------
    # FADE
    # ------------------------------------------------------------------

    def expired_tombstone_files(self) -> List[Tuple[int, SSTable]]:
        """(level, table) pairs whose tombstones exceeded the threshold."""
        now = self._clock()
        threshold = self.lethe_config.delete_persistence_threshold_s
        expired = []
        for level_idx, level in enumerate(self._levels[:-1]):
            for table in level:
                stamp = self._tombstone_stamp.get(table.file_id)
                if stamp is not None and now - stamp >= threshold:
                    expired.append((level_idx, table))
        expired.sort(key=lambda pair: self._tombstone_stamp[pair[1].file_id])
        return expired

    def _enforce_delete_persistence(self) -> None:
        for level_idx, table in self.expired_tombstone_files():
            # The tree may have changed since the scan; re-check residency.
            if table not in self._levels[level_idx]:
                continue
            if level_idx == 0:
                self._compact_l0()
            else:
                self._compact_single_file(level_idx, table)
            self.fade_compactions += 1

    def _compact_single_file(self, level: int, source: SSTable) -> None:
        self._execute_task(
            CompactionTask(
                inputs=[source],
                target_level=level + 1,
                source_levels=(level,),
                merge_target_overlap=True,
                reason="fade",
            )
        )
