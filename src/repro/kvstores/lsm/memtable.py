"""Write buffer (memtable) for the LSM store.

RocksDB uses a skiplist; here a hash map gives the same O(1) point
operations while ordered iteration is produced by sorting at flush time,
which charges the ordering cost where an LSM actually pays it (on flush,
off the hot write path for our single-threaded model).

Each key maps to a *stack* of pending records so that the lazy-merge
semantics survive inside one memtable: a MERGE after a PUT keeps both,
a PUT or DELETE collapses everything before it.

Memory accounting is arena-style, like RocksDB's: every write consumes
buffer space until the memtable is flushed, even when it supersedes an
older record for the same key.  Update-heavy workloads therefore flush
at their *write rate*, not their working-set size -- the write
amplification that lets in-place stores beat LSMs on such workloads.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .record import Record, RecordKind


class Memtable:
    def __init__(self) -> None:
        self._entries: Dict[bytes, List[Record]] = {}
        self._approximate_bytes = 0

    @property
    def approximate_bytes(self) -> int:
        return self._approximate_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def add(self, record: Record) -> None:
        # Arena accounting: every write consumes buffer space.
        self._approximate_bytes += record.encoded_size
        stack = self._entries.get(record.key)
        if stack is None:
            self._entries[record.key] = [record]
            return
        if record.kind is RecordKind.MERGE:
            stack.append(record)
        else:
            # PUT and DELETE supersede every older record for the key
            # (the arena bytes of superseded records stay allocated).
            stack.clear()
            stack.append(record)

    def add_all(self, records: List[Record]) -> None:
        """Bulk :meth:`add`: one pass with hoisted lookups, the
        memtable half of the group-commit write path."""
        entries = self._entries
        get = entries.get
        merge = RecordKind.MERGE
        added = 0
        for record in records:
            key = record.key
            added += record.encoded_size
            stack = get(key)
            if stack is None:
                entries[key] = [record]
            elif record.kind is merge:
                stack.append(record)
            else:
                stack.clear()
                stack.append(record)
        self._approximate_bytes += added

    def lookup(self, key: bytes) -> Optional[List[Record]]:
        """Return the pending record stack for ``key`` (oldest first)."""
        return self._entries.get(key)

    def sorted_records(self) -> Iterator[Record]:
        """Yield all records in (key, sequence) order for flushing."""
        for key in sorted(self._entries):
            yield from self._entries[key]

    def items(self) -> Iterator[Tuple[bytes, List[Record]]]:
        return iter(self._entries.items())
