"""Connectors: the request-translation layer of the performance evaluator.

A Gadget state access stream speaks RocksDB's operation set
``{get, put, merge, delete}``.  Each connector maps those onto the
operations its store actually supports (paper section 5.5):

* RocksDB / Lethe -- direct calls for all four
* FASTER -- get->read, put->upsert, merge->rmw (the store's own
  ``merge`` already implements rmw semantics)
* BerkeleyDB -- no lazy update at all, so merge becomes an explicit
  read-update-write pair at the connector
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

from .api import (
    OP_DELETE,
    OP_GET,
    OP_MERGE,
    OP_PUT,
    AppendMergeOperator,
    BatchOp,
    KVStore,
    MergeOperator,
)

#: Completion callback for pipelined replay: ``(opcode, arrival_ns,
#: complete_ns, value)``.  ``value`` is the reply payload for gets
#: (None for missing keys and for writes).
CompletionFn = Callable[[int, int, int, Optional[bytes]], None]


class PipelineSession:
    """A bounded-window pipelined view of a connector.

    The replayer submits ops tagged with their arrival timestamp; the
    session invokes ``on_complete(opcode, arrival_ns, complete_ns,
    value)`` once the op's effect is durable at the store (for remote
    backends: once its reply frame arrived).  Latency is measured
    arrival-to-completion, so queueing inside the window is *included*
    — deeper pipelines trade per-op latency for throughput and the
    histograms must say so.

    This base class is the degenerate depth-independent fallback for
    embedded stores: each op executes synchronously at submit, so every
    backend accepts ``--pipeline N`` (the window only changes behaviour
    where deferral buys something, i.e. the remote/cluster paths, which
    override this).  Subclasses keep the invariant that ``drain()``
    leaves zero ops pending and that completions fire in submit order.
    """

    def __init__(self, connector: "StoreConnector", depth: int,
                 on_complete: CompletionFn) -> None:
        if depth < 1:
            raise ValueError(f"pipeline depth must be >= 1, got {depth}")
        self._connector = connector
        self.requested_depth = depth
        self._on_complete = on_complete
        self.flushes = 0
        self.coalesced_ops = 0

    @property
    def depth(self) -> int:
        """The effective window bound (may be < requested after a
        capability downgrade, e.g. a v1 remote peer)."""
        return self.requested_depth

    @property
    def pending(self) -> int:
        return 0

    def submit(self, opcode: int, key: bytes, value: bytes,
               arrival_ns: int) -> None:
        conn = self._connector
        if opcode == OP_GET:
            reply = conn.get(key)
        elif opcode == OP_PUT:
            conn.put(key, value)
            reply = None
        elif opcode == OP_MERGE:
            conn.merge(key, value)
            reply = None
        elif opcode == OP_DELETE:
            conn.delete(key)
            reply = None
        else:
            raise ValueError(f"unknown opcode {opcode}")
        complete = time.perf_counter_ns() - conn.take_background_ns()
        self._on_complete(opcode, arrival_ns, complete, reply)

    def flush(self) -> None:
        """Push any staged-but-unsent frames to the wire (no-op for
        synchronous backends)."""

    def drain(self) -> None:
        """Flush and wait for every in-flight op to complete."""
        self.flush()

    def close(self) -> None:
        self.drain()


class StoreConnector:
    """Uniform four-operation facade over a concrete store."""

    def __init__(self, store: KVStore) -> None:
        self.store = store

    @property
    def name(self) -> str:
        return self.store.name

    def get(self, key: bytes) -> Optional[bytes]:
        return self.store.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self.store.put(key, value)

    def delete(self, key: bytes) -> None:
        self.store.delete(key)

    def merge(self, key: bytes, operand: bytes) -> None:
        self.store.merge(key, operand)

    def multi_get(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        return self.store.multi_get(keys)

    def apply_batch(self, ops: Sequence[BatchOp]) -> None:
        self.store.apply_batch(ops)

    def take_background_ns(self) -> int:
        return self.store.take_background_ns()

    def scan(self, start: bytes, end: bytes):
        """Range scan passthrough (stores without scan support raise
        :class:`~repro.kvstores.api.UnsupportedOperationError`); the
        store server's admin ``scan`` command -- which feeds replica
        resync and partition migration -- reaches the store through
        this."""
        return self.store.scan(start, end)

    def flush(self) -> None:
        self.store.flush()

    def scrub(self):
        return self.store.scrub()

    def storage_backend(self):
        return self.store.storage_backend()

    def close(self) -> None:
        self.store.close()

    def abandon(self) -> None:
        """Drop the store like a process kill (no flush, workers
        hard-stopped); see :meth:`repro.kvstores.api.KVStore.abandon`."""
        self.store.abandon()

    def pipeline(self, depth: int, on_complete: CompletionFn) -> PipelineSession:
        """Open a pipelined session over this connector.

        The base implementation is synchronous (window of 1 regardless
        of ``depth``); connectors with a real wire between them and the
        store override this to return a windowed session."""
        return PipelineSession(self, depth, on_complete)


class ReadModifyWriteConnector(StoreConnector):
    """Emulates ``merge`` with get + full_merge + put.

    Used for stores without lazy updates (the B+Tree).  The read-copy-
    update of a growing value is exactly the overhead the paper
    attributes to BerkeleyDB on holistic window workloads.
    """

    def __init__(self, store: KVStore, merge_operator: Optional[MergeOperator] = None):
        super().__init__(store)
        self.merge_operator = merge_operator or AppendMergeOperator()

    def merge(self, key: bytes, operand: bytes) -> None:
        existing = self.store.get(key)
        merged = self.merge_operator.full_merge(existing, (operand,))
        self.store.put(key, merged)

    def apply_batch(self, ops: Sequence[BatchOp]) -> None:
        """Rewrite merges to puts before handing the batch down.

        A merge must see the effect of earlier ops *in the same batch*,
        so pending batch writes are tracked in an overlay: a merge reads
        its base value from the overlay first and the store only as a
        fallback, then becomes a plain put of the materialized value.
        """
        overlay: dict = {}
        rewritten: List[BatchOp] = []
        full_merge = self.merge_operator.full_merge
        store_get = self.store.get
        for opcode, key, value in ops:
            if opcode == OP_PUT:
                overlay[key] = value
                rewritten.append((opcode, key, value))
            elif opcode == OP_DELETE:
                overlay[key] = None
                rewritten.append((opcode, key, value))
            elif opcode == OP_MERGE:
                existing = overlay[key] if key in overlay else store_get(key)
                merged = full_merge(existing, (value,))
                overlay[key] = merged
                rewritten.append((OP_PUT, key, merged))
            else:
                rewritten.append((opcode, key, value))
        self.store.apply_batch(rewritten)


def connect(store: KVStore, merge_operator: Optional[MergeOperator] = None) -> StoreConnector:
    """Wrap ``store`` with the connector appropriate to its capabilities.

    A store advertises native merge by overriding :meth:`KVStore.merge`;
    stores that keep the base-class default (which raises
    :class:`UnsupportedOperationError`) get the read-modify-write shim.
    """
    if type(store).merge is KVStore.merge:
        return ReadModifyWriteConnector(store, merge_operator)
    return StoreConnector(store)
