"""Connectors: the request-translation layer of the performance evaluator.

A Gadget state access stream speaks RocksDB's operation set
``{get, put, merge, delete}``.  Each connector maps those onto the
operations its store actually supports (paper section 5.5):

* RocksDB / Lethe -- direct calls for all four
* FASTER -- get->read, put->upsert, merge->rmw (the store's own
  ``merge`` already implements rmw semantics)
* BerkeleyDB -- no lazy update at all, so merge becomes an explicit
  read-update-write pair at the connector
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .api import (
    OP_DELETE,
    OP_MERGE,
    OP_PUT,
    AppendMergeOperator,
    BatchOp,
    KVStore,
    MergeOperator,
)


class StoreConnector:
    """Uniform four-operation facade over a concrete store."""

    def __init__(self, store: KVStore) -> None:
        self.store = store

    @property
    def name(self) -> str:
        return self.store.name

    def get(self, key: bytes) -> Optional[bytes]:
        return self.store.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self.store.put(key, value)

    def delete(self, key: bytes) -> None:
        self.store.delete(key)

    def merge(self, key: bytes, operand: bytes) -> None:
        self.store.merge(key, operand)

    def multi_get(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        return self.store.multi_get(keys)

    def apply_batch(self, ops: Sequence[BatchOp]) -> None:
        self.store.apply_batch(ops)

    def take_background_ns(self) -> int:
        return self.store.take_background_ns()

    def scan(self, start: bytes, end: bytes):
        """Range scan passthrough (stores without scan support raise
        :class:`~repro.kvstores.api.UnsupportedOperationError`); the
        store server's admin ``scan`` command -- which feeds replica
        resync and partition migration -- reaches the store through
        this."""
        return self.store.scan(start, end)

    def flush(self) -> None:
        self.store.flush()

    def scrub(self):
        return self.store.scrub()

    def storage_backend(self):
        return self.store.storage_backend()

    def close(self) -> None:
        self.store.close()

    def abandon(self) -> None:
        """Drop the store like a process kill (no flush, workers
        hard-stopped); see :meth:`repro.kvstores.api.KVStore.abandon`."""
        self.store.abandon()


class ReadModifyWriteConnector(StoreConnector):
    """Emulates ``merge`` with get + full_merge + put.

    Used for stores without lazy updates (the B+Tree).  The read-copy-
    update of a growing value is exactly the overhead the paper
    attributes to BerkeleyDB on holistic window workloads.
    """

    def __init__(self, store: KVStore, merge_operator: Optional[MergeOperator] = None):
        super().__init__(store)
        self.merge_operator = merge_operator or AppendMergeOperator()

    def merge(self, key: bytes, operand: bytes) -> None:
        existing = self.store.get(key)
        merged = self.merge_operator.full_merge(existing, (operand,))
        self.store.put(key, merged)

    def apply_batch(self, ops: Sequence[BatchOp]) -> None:
        """Rewrite merges to puts before handing the batch down.

        A merge must see the effect of earlier ops *in the same batch*,
        so pending batch writes are tracked in an overlay: a merge reads
        its base value from the overlay first and the store only as a
        fallback, then becomes a plain put of the materialized value.
        """
        overlay: dict = {}
        rewritten: List[BatchOp] = []
        full_merge = self.merge_operator.full_merge
        store_get = self.store.get
        for opcode, key, value in ops:
            if opcode == OP_PUT:
                overlay[key] = value
                rewritten.append((opcode, key, value))
            elif opcode == OP_DELETE:
                overlay[key] = None
                rewritten.append((opcode, key, value))
            elif opcode == OP_MERGE:
                existing = overlay[key] if key in overlay else store_get(key)
                merged = full_merge(existing, (value,))
                overlay[key] = merged
                rewritten.append((OP_PUT, key, merged))
            else:
                rewritten.append((opcode, key, value))
        self.store.apply_batch(rewritten)


def connect(store: KVStore, merge_operator: Optional[MergeOperator] = None) -> StoreConnector:
    """Wrap ``store`` with the connector appropriate to its capabilities.

    A store advertises native merge by overriding :meth:`KVStore.merge`;
    stores that keep the base-class default (which raises
    :class:`UnsupportedOperationError`) get the read-modify-write shim.
    """
    if type(store).merge is KVStore.merge:
        return ReadModifyWriteConnector(store, merge_operator)
    return StoreConnector(store)
