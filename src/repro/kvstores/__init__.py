"""Embedded key-value stores evaluated by the Gadget harness.

Four stores matching the paper's lineup -- a RocksDB-like LSM-tree,
the delete-aware Lethe variant, a FASTER-like hash/hybrid-log store,
and a BerkeleyDB-like B+Tree -- plus an in-memory oracle for testing.
"""

from .api import (
    AppendMergeOperator,
    CounterMergeOperator,
    KVStore,
    KVStoreError,
    MergeOperator,
    StoreClosedError,
    StoreStats,
    UnsupportedOperationError,
)
from .btree import BTreeConfig, BTreeStore
from .cache import LRUCache
from .connectors import ReadModifyWriteConnector, StoreConnector, connect
from .factory import STORE_NAMES, create_connector, create_store
from .faster import FasterConfig, FasterStore
from .integrity import (
    ChecksumKind,
    CorruptionError,
    IntegrityCounters,
    ScrubFinding,
    ScrubReport,
    checksum,
    crc32c,
    resolve_checksum_kind,
)
from .lsm import LetheConfig, LetheStore, LSMConfig, RocksLSMStore
from .memory import InMemoryStore
from .remote import RemoteStoreClient, RemoteStoreError, StoreServer
from .storage import FileStorage, MemoryStorage, Storage, StorageError, make_storage

__all__ = [
    "AppendMergeOperator",
    "BTreeConfig",
    "BTreeStore",
    "ChecksumKind",
    "CorruptionError",
    "CounterMergeOperator",
    "FasterConfig",
    "FasterStore",
    "FileStorage",
    "InMemoryStore",
    "IntegrityCounters",
    "KVStore",
    "KVStoreError",
    "LRUCache",
    "LSMConfig",
    "LetheConfig",
    "LetheStore",
    "MemoryStorage",
    "MergeOperator",
    "ReadModifyWriteConnector",
    "RemoteStoreClient",
    "RemoteStoreError",
    "RocksLSMStore",
    "ScrubFinding",
    "ScrubReport",
    "StoreServer",
    "STORE_NAMES",
    "Storage",
    "StorageError",
    "StoreClosedError",
    "StoreConnector",
    "StoreStats",
    "UnsupportedOperationError",
    "checksum",
    "connect",
    "crc32c",
    "create_connector",
    "create_store",
    "make_storage",
    "resolve_checksum_kind",
]
