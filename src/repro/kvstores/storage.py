"""Storage backends for the persistent stores.

The stores write serialized artifacts (WAL segments, SSTables, B+Tree
pages, log segments) through this small blob interface so they can run
either fully in memory (fast, default, used by tests and benchmarks) or
against the real filesystem (used to sanity-check durability paths).
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, Optional


class StorageError(Exception):
    """Raised for missing blobs or I/O failures."""


class Storage:
    """Abstract named-blob storage."""

    def write(self, name: str, data: bytes) -> None:
        raise NotImplementedError

    def append(self, name: str, data: bytes) -> None:
        raise NotImplementedError

    def read(self, name: str) -> bytes:
        raise NotImplementedError

    def read_range(self, name: str, offset: int, length: int) -> bytes:
        raise NotImplementedError

    def delete(self, name: str) -> None:
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def list(self) -> Iterable[str]:
        raise NotImplementedError

    def size(self, name: str) -> int:
        raise NotImplementedError


class MemoryStorage(Storage):
    """Blobs kept in process memory.

    This is the default substrate: it performs the same serialization
    work as a filesystem-backed store without actual disk latency, which
    keeps benchmark runs focused on data-structure behaviour.
    """

    def __init__(self) -> None:
        self._blobs: Dict[str, bytearray] = {}
        self._lock = threading.Lock()

    def write(self, name: str, data: bytes) -> None:
        with self._lock:
            self._blobs[name] = bytearray(data)

    def append(self, name: str, data: bytes) -> None:
        with self._lock:
            self._blobs.setdefault(name, bytearray()).extend(data)

    def read(self, name: str) -> bytes:
        try:
            return bytes(self._blobs[name])
        except KeyError:
            raise StorageError(f"no such blob: {name}") from None

    def read_range(self, name: str, offset: int, length: int) -> bytes:
        try:
            blob = self._blobs[name]
        except KeyError:
            raise StorageError(f"no such blob: {name}") from None
        return bytes(blob[offset : offset + length])

    def delete(self, name: str) -> None:
        self._blobs.pop(name, None)

    def exists(self, name: str) -> bool:
        return name in self._blobs

    def list(self) -> Iterable[str]:
        return sorted(self._blobs)

    def size(self, name: str) -> int:
        try:
            return len(self._blobs[name])
        except KeyError:
            raise StorageError(f"no such blob: {name}") from None

    @property
    def total_bytes(self) -> int:
        return sum(len(b) for b in self._blobs.values())


class FileStorage(Storage):
    """Blobs stored as real files under a directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        safe = name.replace("/", "_")
        return os.path.join(self.root, safe)

    def write(self, name: str, data: bytes) -> None:
        with open(self._path(name), "wb") as handle:
            handle.write(data)

    def append(self, name: str, data: bytes) -> None:
        with open(self._path(name), "ab") as handle:
            handle.write(data)

    def read(self, name: str) -> bytes:
        try:
            with open(self._path(name), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            raise StorageError(f"no such blob: {name}") from None

    def read_range(self, name: str, offset: int, length: int) -> bytes:
        try:
            with open(self._path(name), "rb") as handle:
                handle.seek(offset)
                return handle.read(length)
        except FileNotFoundError:
            raise StorageError(f"no such blob: {name}") from None

    def delete(self, name: str) -> None:
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def list(self) -> Iterable[str]:
        return sorted(os.listdir(self.root))

    def size(self, name: str) -> int:
        try:
            return os.path.getsize(self._path(name))
        except FileNotFoundError:
            raise StorageError(f"no such blob: {name}") from None


def make_storage(kind: str = "memory", root: Optional[str] = None) -> Storage:
    """Build a storage backend by name (``memory`` or ``file``)."""
    if kind == "memory":
        return MemoryStorage()
    if kind == "file":
        if root is None:
            raise ValueError("file storage requires a root directory")
        return FileStorage(root)
    raise ValueError(f"unknown storage kind: {kind!r}")
