"""Byte-budgeted LRU cache used for LSM block caches and B+Tree page caches."""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """LRU cache with a capacity expressed in bytes.

    ``sizer`` maps a cached value to its byte weight; entries are evicted
    least-recently-used first once the budget is exceeded.  An optional
    ``on_evict`` hook lets callers write dirty pages back on eviction.
    """

    def __init__(
        self,
        capacity_bytes: int,
        sizer: Callable[[V], int] = len,  # type: ignore[assignment]
        on_evict: Optional[Callable[[K, V], None]] = None,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._sizer = sizer
        self._on_evict = on_evict
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self._sizes: dict = {}
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    @property
    def used_bytes(self) -> int:
        return self._used

    def get(self, key: K) -> Optional[V]:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: K) -> Optional[V]:
        """Read without touching recency or hit counters."""
        return self._entries.get(key)

    def put(self, key: K, value: V) -> None:
        size = self._sizer(value)
        if key in self._entries:
            self._used -= self._sizes[key]
            self._entries.move_to_end(key)
        self._entries[key] = value
        self._sizes[key] = size
        self._used += size
        self._evict_to_fit()

    def invalidate(self, key: K) -> None:
        value = self._entries.pop(key, None)
        if value is not None or key in self._sizes:
            self._used -= self._sizes.pop(key, 0)

    def invalidate_where(self, predicate: Callable[[K], bool]) -> None:
        for key in [k for k in self._entries if predicate(k)]:
            self.invalidate(key)

    def clear(self) -> None:
        if self._on_evict is not None:
            for key, value in self._entries.items():
                self._on_evict(key, value)
        self._entries.clear()
        self._sizes.clear()
        self._used = 0

    def _evict_to_fit(self) -> None:
        while self._used > self.capacity_bytes and self._entries:
            key, value = self._entries.popitem(last=False)
            self._used -= self._sizes.pop(key)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(key, value)
