"""External state management: a store behind a socket (paper section 8).

Streaming systems like MillWheel and Pravega keep state in an external
store rather than an embedded one, decoupling compute from state at the
cost of a network hop per access.  The paper notes Gadget extends to
this setting with the right store wrappers; this module provides them:

* :class:`StoreServer` -- serves any :class:`~repro.kvstores.api.KVStore`
  over a length-prefixed binary protocol on localhost
* :class:`RemoteStoreClient` -- a connector-compatible client, so the
  replayer and evaluator drive an external store exactly like an
  embedded one (every access now pays serialization + a socket round
  trip, the external-state overhead the paper's introduction cites)

The server handles each connection on its own thread; single-writer
semantics per key are preserved by the dataflow model itself (one task
writes any given key), while the server serializes store access with a
lock, like the thread-safe facades of real external stores.
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading
from typing import Optional, Tuple

from .api import KVStore
from .connectors import StoreConnector, connect

_HEADER = struct.Struct("<BII")  # opcode, key length, value length

OP_GET = 0
OP_PUT = 1
OP_MERGE = 2
OP_DELETE = 3
OP_CLOSE = 4

REPLY_MISSING = 0
REPLY_VALUE = 1
REPLY_OK = 2


def _recv_exact(sock: socket.socket, length: int) -> bytes:
    chunks = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        connector: StoreConnector = self.server.connector  # type: ignore[attr-defined]
        lock: threading.Lock = self.server.store_lock  # type: ignore[attr-defined]
        sock = self.request
        while True:
            try:
                header = _recv_exact(sock, _HEADER.size)
            except ConnectionError:
                return
            opcode, key_len, value_len = _HEADER.unpack(header)
            if opcode == OP_CLOSE:
                return
            key = _recv_exact(sock, key_len) if key_len else b""
            value = _recv_exact(sock, value_len) if value_len else b""
            with lock:
                if opcode == OP_GET:
                    result = connector.get(key)
                elif opcode == OP_PUT:
                    connector.put(key, value)
                    result = None
                elif opcode == OP_MERGE:
                    connector.merge(key, value)
                    result = None
                elif opcode == OP_DELETE:
                    connector.delete(key)
                    result = None
                else:
                    raise ValueError(f"unknown opcode {opcode}")
            if opcode == OP_GET:
                if result is None:
                    sock.sendall(struct.pack("<BI", REPLY_MISSING, 0))
                else:
                    sock.sendall(struct.pack("<BI", REPLY_VALUE, len(result)) + result)
            else:
                sock.sendall(struct.pack("<BI", REPLY_OK, 0))


class StoreServer:
    """Serves a store on 127.0.0.1; one thread per client connection."""

    def __init__(self, store: KVStore, port: int = 0) -> None:
        self.store = store
        self._server = socketserver.ThreadingTCPServer(
            ("127.0.0.1", port), _Handler, bind_and_activate=True
        )
        self._server.daemon_threads = True
        self._server.connector = connect(store)  # type: ignore[attr-defined]
        self._server.store_lock = threading.Lock()  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def start(self) -> "StoreServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self.store.close()

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class RemoteStoreClient:
    """Connector-compatible client for a :class:`StoreServer`.

    Drop-in for :class:`~repro.kvstores.connectors.StoreConnector`:
    the trace replayer and the performance evaluator can measure an
    external store without code changes.
    """

    def __init__(self, host: str, port: int, store_name: str = "remote") -> None:
        self.name = store_name
        self._sock = socket.create_connection((host, port))
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -- protocol ----------------------------------------------------------

    def _request(self, opcode: int, key: bytes, value: bytes = b"") -> Optional[bytes]:
        self._sock.sendall(_HEADER.pack(opcode, len(key), len(value)) + key + value)
        status, length = struct.unpack("<BI", _recv_exact(self._sock, 5))
        if status == REPLY_VALUE:
            return _recv_exact(self._sock, length)
        if status == REPLY_MISSING:
            return None
        return None  # REPLY_OK

    # -- connector API -------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        return self._request(OP_GET, key)

    def put(self, key: bytes, value: bytes) -> None:
        self._request(OP_PUT, key, value)

    def merge(self, key: bytes, operand: bytes) -> None:
        self._request(OP_MERGE, key, operand)

    def delete(self, key: bytes) -> None:
        self._request(OP_DELETE, key)

    def take_background_ns(self) -> int:
        return 0  # network time is genuinely client-visible

    def flush(self) -> None:
        """The server owns durability; nothing to do client-side."""

    def close(self) -> None:
        try:
            self._sock.sendall(_HEADER.pack(OP_CLOSE, 0, 0))
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "RemoteStoreClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
