"""External state management: a store behind a socket (paper section 8).

Streaming systems like MillWheel and Pravega keep state in an external
store rather than an embedded one, decoupling compute from state at the
cost of a network hop per access.  The paper notes Gadget extends to
this setting with the right store wrappers; this module provides them:

* :class:`StoreServer` -- serves any :class:`~repro.kvstores.api.KVStore`
  over a length-prefixed binary protocol on localhost
* :class:`RemoteStoreClient` -- a connector-compatible client, so the
  replayer and evaluator drive an external store exactly like an
  embedded one (every access now pays serialization + a socket round
  trip, the external-state overhead the paper's introduction cites)

The server multiplexes every connection on one ``selectors``-based
event loop thread: N replay processes fan in over N sockets without a
thread per connection, and store access is serialized naturally by the
single loop (single-writer semantics per key are preserved by the
dataflow model itself -- one task writes any given key).

Failure semantics (the robustness axis):

* every client socket operation runs under a configurable timeout; a
  hung or killed server surfaces as a typed :class:`RemoteStoreError`
  within that timeout instead of blocking the replayer forever
* protocol-level failures (unknown opcode, a store exception on the
  server) come back as an explicit ``REPLY_ERROR`` frame rather than a
  silently dead connection
* an optional :class:`~repro.faults.RetryPolicy` makes the client
  reconnect-and-retry through transient server outages; retried writes
  are at-least-once, which is safe for the replayer's idempotent
  ``put``/``delete`` and benchmark-acceptable for ``merge``
* :meth:`StoreServer.stop` drains in-flight requests before closing
  the underlying store, so a shutdown never yanks the store out from
  under a handler mid-operation
"""

from __future__ import annotations

import json
import selectors
import socket
import struct
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..obs import tracing
from .api import BatchOp, KVStore, KVStoreError
from .connectors import PipelineSession, StoreConnector, connect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.retry import RetryPolicy

_HEADER = struct.Struct("<BII")  # opcode, key length, value length

OP_GET = 0
OP_PUT = 1
OP_MERGE = 2
OP_DELETE = 3
OP_CLOSE = 4
#: protocol v2: N ops in one request, vectored replies in one response.
#: The header's ``key_len`` field carries the op count and ``value_len``
#: the total payload length; the payload is ``count`` back-to-back
#: :data:`_BATCH_ITEM`-framed ops.
OP_BATCH = 5
#: control plane: key = command name (``ping``, ``configure``, ``stats``,
#: ``scan``), value = JSON arguments; the reply is a ``REPLY_VALUE``
#: frame whose payload is command-specific (JSON, except ``scan`` which
#: returns :data:`_BATCH_ITEM`-framed key/value pairs).  The cluster
#: layer drives replication chains, failover probes, and partition
#: migration entirely through this opcode, so reconfiguration is
#: serialized on the server's event loop like any other request.
OP_ADMIN = 6

_KNOWN_OPS = frozenset((OP_GET, OP_PUT, OP_MERGE, OP_DELETE))
_WRITE_OPS = frozenset((OP_PUT, OP_MERGE, OP_DELETE))

#: one batched op on the wire: opcode, key length, value length
_BATCH_ITEM = struct.Struct("<BII")
_REPLY_ITEM = struct.Struct("<BI")  # per-op status, data length
_REPLY_HEAD = struct.Struct("<BI")  # reply frame header: status, body length

#: sentinel returned by the client's batch request when every op in the
#: reply is ``REPLY_OK`` with no data (the common all-writes-succeeded
#: case); lets ``apply_batch`` skip per-item reply parsing entirely
_BATCH_ALL_OK: List[Tuple[int, bytes]] = []

REPLY_MISSING = 0
REPLY_VALUE = 1
REPLY_OK = 2
REPLY_ERROR = 3
#: reply frame carrying one :data:`_REPLY_ITEM` per batched op
REPLY_BATCH = 4

#: the encoded ``(REPLY_OK, 0)`` reply item; an all-writes-succeeded
#: batch reply body is just this item repeated ``count`` times, which
#: both ends exploit to avoid per-item framing work
_OK_ITEM = _REPLY_ITEM.pack(REPLY_OK, 0)

#: wire protocol generation spoken by this build of the code
PROTOCOL_VERSION = 2

#: default per-operation socket timeout for clients, in seconds
DEFAULT_TIMEOUT_S = 5.0


class RemoteStoreError(KVStoreError):
    """A remote store operation failed (timeout, dead server, or an
    error reply from the protocol)."""


class _BatchUnsupportedError(Exception):
    """The server answered :data:`OP_BATCH` with ``unknown opcode``:
    it speaks protocol v1.  Internal signal for the client's permanent
    per-op fallback; deliberately NOT a :class:`RemoteStoreError` so
    retry policies never retry it."""


def _recv_into_exact(sock: socket.socket, buf: bytearray, length: int) -> int:
    """Fill ``buf[:length]`` from the socket without allocating.

    The caller supplies (and reuses) the buffer; data lands in place via
    ``recv_into`` so a reply header read costs zero heap churn.  Returns
    the number of ``recv_into`` calls made (the client's syscalls-per-op
    accounting).  Honours the socket's configured timeout:
    ``socket.timeout`` propagates to the caller (the client converts it
    to a :class:`RemoteStoreError`; the server treats it like a dead
    peer).
    """
    calls = 0
    received = 0
    with memoryview(buf) as view:
        while received < length:
            n = sock.recv_into(view[received:length])
            calls += 1
            if n == 0:
                raise ConnectionError("peer closed the connection")
            received += n
    return calls


def _recv_exact(sock: socket.socket, length: int) -> bytes:
    """Receive exactly ``length`` bytes (one buffer, filled in place)."""
    buf = bytearray(length)
    _recv_into_exact(sock, buf, length)
    return bytes(buf)


def _grow(buf: bytearray, need: int) -> None:
    """Amortized-doubling capacity growth for a reusable frame buffer."""
    if len(buf) < need:
        buf.extend(b"\x00" * max(need - len(buf), len(buf)))


def _frame_op_into(
    buf: bytearray, pos: int, opcode: int, key: bytes, value: bytes
) -> int:
    """Frame one op at ``buf[pos:]`` (caller guarantees capacity);
    returns the end offset.  ``pack_into`` + slice assignment replaces
    the old ``pack(...) + key + value`` concatenation, so a framed op
    costs zero allocations on a warm buffer."""
    key_len = len(key)
    value_len = len(value)
    _HEADER.pack_into(buf, pos, opcode, key_len, value_len)
    pos += _HEADER.size
    buf[pos : pos + key_len] = key
    pos += key_len
    buf[pos : pos + value_len] = value
    return pos + value_len


def _frame_batch_into(
    buf: bytearray, items: Sequence[Tuple[int, bytes, bytes]]
) -> int:
    """Frame one :data:`OP_BATCH` request into a reusable buffer;
    returns the frame length."""
    payload_len = sum(
        _BATCH_ITEM.size + len(key) + len(value) for _, key, value in items
    )
    need = _HEADER.size + payload_len
    _grow(buf, need)
    _HEADER.pack_into(buf, 0, OP_BATCH, len(items), payload_len)
    pos = _HEADER.size
    for opcode, key, value in items:
        key_len = len(key)
        value_len = len(value)
        _BATCH_ITEM.pack_into(buf, pos, opcode, key_len, value_len)
        pos += _BATCH_ITEM.size
        buf[pos : pos + key_len] = key
        pos += key_len
        buf[pos : pos + value_len] = value
        pos += value_len
    return need


def _decode_batch_items(payload: bytes, count: int) -> List[Tuple[int, bytes, bytes]]:
    """Decode ``count`` :data:`_BATCH_ITEM`-framed ops; raises
    ``ValueError``/``struct.error`` on malformed payloads."""
    items: List[Tuple[int, bytes, bytes]] = []
    offset = 0
    for _ in range(count):
        opcode, key_len, value_len = _BATCH_ITEM.unpack_from(payload, offset)
        offset += _BATCH_ITEM.size
        if offset + key_len + value_len > len(payload):
            raise ValueError("batch item exceeds payload")
        key = payload[offset : offset + key_len]
        offset += key_len
        value = payload[offset : offset + value_len]
        offset += value_len
        items.append((opcode, key, value))
    if offset != len(payload):
        raise ValueError("trailing bytes after batch items")
    return items


def _execute_batch(
    connector: StoreConnector, items: List[Tuple[int, bytes, bytes]]
) -> bytes:
    """Run a decoded batch and build the vectored reply body.

    Consecutive reads become one ``multi_get`` and consecutive writes
    one ``apply_batch``, so the server amortizes exactly like an
    embedded store.  A failing run marks its members ``REPLY_ERROR``
    (message embedded per op) and execution continues with the next
    run -- one bad op never kills the connection.
    """
    count = len(items)
    # Fast path for the common shape: a batch that is entirely writes
    # succeeding as one run needs no per-item reply framing at all.
    if all(item[0] in _WRITE_OPS for item in items):
        try:
            connector.apply_batch(items)
            return _OK_ITEM * count
        except Exception as exc:
            message = f"{type(exc).__name__}: {exc}".encode("utf-8", "replace")
            item = _REPLY_ITEM.pack(REPLY_ERROR, len(message)) + message
            return item * count
    statuses: List[Tuple[int, bytes]] = [(REPLY_ERROR, b"unhandled")] * count
    i = 0
    while i < count:
        opcode = items[i][0]
        if opcode == OP_GET:
            j = i
            while j < count and items[j][0] == OP_GET:
                j += 1
            try:
                values = connector.multi_get([items[k][1] for k in range(i, j)])
                for k, value in zip(range(i, j), values):
                    statuses[k] = (
                        (REPLY_MISSING, b"") if value is None else (REPLY_VALUE, value)
                    )
            except Exception as exc:
                message = f"{type(exc).__name__}: {exc}".encode("utf-8", "replace")
                for k in range(i, j):
                    statuses[k] = (REPLY_ERROR, message)
            i = j
        elif opcode in _WRITE_OPS:
            j = i
            while j < count and items[j][0] in _WRITE_OPS:
                j += 1
            try:
                connector.apply_batch(items[i:j])
                statuses[i:j] = [(REPLY_OK, b"")] * (j - i)
            except Exception as exc:
                message = f"{type(exc).__name__}: {exc}".encode("utf-8", "replace")
                for k in range(i, j):
                    statuses[k] = (REPLY_ERROR, message)
            i = j
        else:
            statuses[i] = (REPLY_ERROR, f"unknown batch opcode {opcode}".encode())
            i += 1
    body = bytearray()
    for status, data in statuses:
        body += _REPLY_ITEM.pack(status, len(data))
        body += data
    return bytes(body)


class _Connection:
    """Per-client state on the event loop: staged input, pending output."""

    __slots__ = ("sock", "inbuf", "outbuf", "close_after_flush")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        #: set when the last queued reply must be the connection's final
        #: word (unknown opcode, shutdown refusal): flush, then close
        self.close_after_flush = False


#: how long :meth:`StoreServer.stop` keeps trying to flush queued
#: replies to slow readers before closing their sockets anyway
_DRAIN_DEADLINE_S = 5.0

#: exclusive upper bound used by the admin ``scan`` command; covers any
#: key the harness generates (keys sort strictly below 64 0xff bytes)
_SCAN_END = b"\xff" * 64


class _ReplicationError(Exception):
    """A downstream replication forward failed.  Internal to the server:
    surfaced to the client as a ``REPLY_ERROR`` frame so the cluster
    layer can repair the chain and retry."""


class _ReplicationLink:
    """Downstream half of a replication chain, owned by the loop thread.

    A configured server forwards every write it accepts to one
    downstream peer over a dedicated socket.  ``sync=True`` makes the
    forward part of the request's critical path: the frame is sent and
    its reply awaited *before* the local apply, so an acked write is
    already at the next node (chain ack levels ``one``/``all``).
    ``sync=False`` pipelines frames fire-and-forget and counts acks as
    they drain back through the server's selector; the gap between
    ``ops_sent`` and ``ops_acked`` is exactly the lost-ack window a
    primary death would leave (ack level ``none``).

    Because a downstream replica runs the same server code, its own
    configured link forwards the write further -- chains of any length
    compose without extra machinery.
    """

    def __init__(
        self,
        server: "StoreServer",
        host: str,
        port: int,
        sync: bool,
        timeout: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        self.peer = (host, port)
        self.sync = sync
        self.broken = False
        self.ops_sent = 0
        self.ops_acked = 0
        self.errors = 0
        self.lag_ms_last = 0.0
        self.lag_ms_max = 0.0
        self._lag_ms_sum = 0.0
        self._lag_samples = 0
        self._server = server
        self._registered = False
        #: (send monotonic, op count) per in-flight async frame
        self._pending: "deque" = deque()
        self._inbuf = bytearray()
        #: reusable frame-assembly and ack-header buffers: forwarding a
        #: write allocates nothing once these are warm
        self._framebuf = bytearray(4096)
        self._ackbuf = bytearray(_REPLY_HEAD.size)
        try:
            sock = socket.create_connection(self.peer, timeout=timeout)
        except OSError as exc:
            raise _ReplicationError(
                f"cannot reach replica at {host}:{port}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(timeout)
        self._sock = sock
        if not sync:
            server._selector.register(sock, selectors.EVENT_READ, self)
            self._registered = True

    # -- forwarding ----------------------------------------------------------

    def forward(self, opcode: int, key: bytes, value: bytes) -> None:
        need = _HEADER.size + len(key) + len(value)
        _grow(self._framebuf, need)
        _frame_op_into(self._framebuf, 0, opcode, key, value)
        self._transmit(need, 1)

    def forward_batch(self, items: Sequence[Tuple[int, bytes, bytes]]) -> None:
        need = _frame_batch_into(self._framebuf, items)
        self._transmit(need, len(items))

    def _transmit(self, length: int, ops: int) -> None:
        if self.broken:
            if self.sync:
                raise _ReplicationError(
                    f"replication link to {self.peer[0]}:{self.peer[1]} is down"
                )
            self.errors += ops
            return
        began = time.monotonic()
        try:
            with memoryview(self._framebuf)[:length] as frame:
                self._sock.sendall(frame)
        except OSError as exc:
            self._fail(ops, exc)
            return  # _fail raised already when sync
        self.ops_sent += ops
        if self.sync:
            try:
                self._read_sync_ack(ops)
            except (OSError, struct.error) as exc:
                self._fail(ops, exc)
                return
            self.ops_acked += ops
            self._record_lag((time.monotonic() - began) * 1000.0)
        else:
            self._pending.append((began, ops))

    def _read_sync_ack(self, ops: int) -> None:
        _recv_into_exact(self._sock, self._ackbuf, _REPLY_HEAD.size)
        status, length = _REPLY_HEAD.unpack_from(self._ackbuf)
        body = _recv_exact(self._sock, length) if length else b""
        if status == REPLY_OK:
            return
        if status == REPLY_BATCH:
            if body == _OK_ITEM * ops:
                return
            offset = 0
            for _ in range(ops):
                item_status, item_len = _REPLY_ITEM.unpack_from(body, offset)
                offset += _REPLY_ITEM.size
                if item_status == REPLY_ERROR:
                    message = body[offset : offset + item_len]
                    raise _ReplicationError(
                        f"replica {self.peer[0]}:{self.peer[1]} rejected a "
                        f"forwarded write: {message.decode('utf-8', 'replace')}"
                    )
                offset += item_len
            return
        if status == REPLY_ERROR:
            raise _ReplicationError(
                f"replica {self.peer[0]}:{self.peer[1]} rejected a forwarded "
                f"write: {body.decode('utf-8', 'replace')}"
            )
        raise _ReplicationError(
            f"replica {self.peer[0]}:{self.peer[1]} protocol violation: "
            f"reply {status} to a forwarded write"
        )

    def _fail(self, ops: int, exc: Exception) -> None:
        self.errors += ops
        self.broken = True
        self.close()
        if self.sync:
            if isinstance(exc, _ReplicationError):
                raise exc
            raise _ReplicationError(
                f"replication to {self.peer[0]}:{self.peer[1]} failed: {exc}"
            ) from exc

    # -- async ack drain (selector callback) ---------------------------------

    def drain(self) -> None:
        """Consume acks the downstream piped back; loop-thread only."""
        try:
            chunk = self._sock.recv(1 << 16)
        except BlockingIOError:
            return
        except OSError as exc:
            self._fail(self.pending_ops(), exc)
            return
        if not chunk:
            self._fail(self.pending_ops(), ConnectionError("replica closed"))
            return
        buf = self._inbuf
        buf += chunk
        while len(buf) >= 5:
            status, length = struct.unpack_from("<BI", buf, 0)
            if len(buf) < 5 + length:
                break
            del buf[: 5 + length]
            if not self._pending:
                continue  # stray frame; nothing to attribute it to
            sent, ops = self._pending.popleft()
            self._record_lag((time.monotonic() - sent) * 1000.0)
            if status == REPLY_ERROR:
                self.errors += ops
            else:
                self.ops_acked += ops

    def _record_lag(self, lag_ms: float) -> None:
        self.lag_ms_last = lag_ms
        if lag_ms > self.lag_ms_max:
            self.lag_ms_max = lag_ms
        self._lag_ms_sum += lag_ms
        self._lag_samples += 1

    # -- introspection -------------------------------------------------------

    def pending_ops(self) -> int:
        """Writes acked to clients but not yet confirmed downstream --
        the window that dies with this node."""
        return sum(ops for _, ops in self._pending)

    def stats(self) -> Dict[str, object]:
        return {
            "peer": f"{self.peer[0]}:{self.peer[1]}",
            "sync": self.sync,
            "ops_sent": self.ops_sent,
            "ops_acked": self.ops_acked,
            "pending": self.pending_ops(),
            "errors": self.errors,
            "broken": self.broken,
            "lag_ms_last": round(self.lag_ms_last, 3),
            "lag_ms_max": round(self.lag_ms_max, 3),
            "lag_ms_avg": round(
                self._lag_ms_sum / self._lag_samples if self._lag_samples else 0.0,
                3,
            ),
        }

    def close(self) -> None:
        if self._registered:
            try:
                self._server._selector.unregister(self._sock)
            except (KeyError, ValueError, OSError):
                pass
            self._registered = False
        try:
            self._sock.close()
        except OSError:
            pass


class StoreServer:
    """Serves a store on 127.0.0.1 from one ``selectors`` event loop.

    All client connections multiplex onto a single non-blocking loop
    thread, so N replay processes cost N sockets, not N threads --
    and store access needs no lock because only the loop thread ever
    touches the store.  Requests on one connection still execute in
    arrival order, and one op executes at a time globally (the same
    serialization the old lock provided).

    ``protocol_version=1`` makes the server behave like a pre-batching
    build: :data:`OP_BATCH` is answered with an ``unknown opcode`` error
    (the historical behaviour), which new clients use to fall back to
    per-op requests.  Version 2 (the default) accepts batch frames.
    """

    def __init__(
        self, store: KVStore, port: int = 0, protocol_version: int = PROTOCOL_VERSION
    ) -> None:
        self.store = store
        self.protocol_version = protocol_version
        self._connector = connect(store)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", port))
        self._listener.listen(128)
        self._listener.setblocking(False)
        # the wake pipe lets stop() interrupt a parked select() at once
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._connections: Dict[socket.socket, _Connection] = {}
        self._closing = False
        self._killed = False
        self._stopped = False
        self._thread: Optional[threading.Thread] = None
        #: downstream replication link (None = unreplicated); configured
        #: via the ``configure`` admin command so changes serialize on
        #: the event loop with the traffic they affect
        self._replication: Optional[_ReplicationLink] = None

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound.  The listener is bound in
        ``__init__``, so with ``port=0`` the kernel-assigned port is
        readable here immediately after construction -- before
        :meth:`start` -- which is how cluster tests spin up N servers
        without port-collision flakes."""
        return self._listener.getsockname()  # type: ignore[return-value]

    @property
    def port(self) -> int:
        """The kernel-assigned listening port (see :attr:`address`)."""
        return self.address[1]

    def start(self) -> "StoreServer":
        self._selector.register(self._listener, selectors.EVENT_READ, "listener")
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._thread = threading.Thread(
            target=self._serve, name="store-server", daemon=True
        )
        self._thread.start()
        return self

    # -- event loop ----------------------------------------------------------

    def _serve(self) -> None:
        selector = self._selector
        while not self._closing:
            for key, mask in selector.select():
                data = key.data
                if data == "listener":
                    self._accept()
                elif data == "wake":
                    try:
                        while self._wake_r.recv(4096):
                            pass
                    except (BlockingIOError, OSError):
                        pass
                elif isinstance(data, _ReplicationLink):
                    data.drain()
                else:
                    conn: _Connection = data
                    if mask & selectors.EVENT_READ:
                        self._read(conn)
                    if (
                        mask & selectors.EVENT_WRITE
                        and conn.sock in self._connections
                    ):
                        self._flush(conn)
        if self._killed:
            self._abrupt_close()
        else:
            self._drain_and_close()

    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Connection(sock)
            self._connections[sock] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _read(self, conn: _Connection) -> None:
        try:
            chunk = conn.sock.recv(1 << 16)
        except BlockingIOError:
            return
        except OSError:
            self._close_connection(conn)
            return
        if not chunk:
            self._close_connection(conn)
            return
        conn.inbuf += chunk
        if self._process(conn):
            self._flush(conn)

    def _process(self, conn: _Connection) -> bool:
        """Execute every complete frame staged in ``conn.inbuf``.

        Returns False if the connection was closed (``conn`` must not
        be touched again); replies are queued on ``conn.outbuf``.
        """
        buf = conn.inbuf
        connector = self._connector
        header_size = _HEADER.size
        while not conn.close_after_flush:
            if len(buf) < header_size:
                break
            opcode, key_len, value_len = _HEADER.unpack_from(buf, 0)
            if opcode == OP_BATCH and self.protocol_version >= 2:
                frame_len = header_size + value_len
                if len(buf) < frame_len:
                    break
                payload = bytes(buf[header_size:frame_len])
                del buf[:frame_len]
                if self._closing:
                    self._queue_error(conn, "server is shutting down")
                    conn.close_after_flush = True
                    break
                try:
                    items = _decode_batch_items(payload, key_len)
                except (ValueError, struct.error) as exc:
                    self._queue_error(conn, f"malformed batch: {exc}")
                    continue
                repl = self._replication
                writes = (
                    [item for item in items if item[0] in _WRITE_OPS]
                    if repl is not None
                    else []
                )
                # Chain order: a sync link confirms the downstream copy
                # BEFORE the local apply, so a write this server acks is
                # already at the next node -- and a forward failure is
                # reported before anything diverges locally.
                if repl is not None and writes and repl.sync:
                    try:
                        repl.forward_batch(writes)
                    except _ReplicationError as exc:
                        self._queue_error(conn, str(exc))
                        continue
                body = _execute_batch(connector, items)
                if repl is not None and writes and not repl.sync:
                    repl.forward_batch(writes)
                conn.outbuf += struct.pack("<BI", REPLY_BATCH, len(body))
                conn.outbuf += body
                continue
            if opcode == OP_ADMIN:
                frame_len = header_size + key_len + value_len
                if len(buf) < frame_len:
                    break
                command = bytes(buf[header_size : header_size + key_len])
                payload = bytes(buf[header_size + key_len : frame_len])
                del buf[:frame_len]
                if self._closing:
                    self._queue_error(conn, "server is shutting down")
                    conn.close_after_flush = True
                    break
                try:
                    response = self._admin(
                        command.decode("utf-8", errors="replace"), payload
                    )
                except Exception as exc:
                    self._queue_error(conn, f"{type(exc).__name__}: {exc}")
                    continue
                conn.outbuf += struct.pack("<BI", REPLY_VALUE, len(response))
                conn.outbuf += response
                continue
            if opcode == OP_CLOSE:
                self._close_connection(conn)
                return False
            if opcode not in _KNOWN_OPS:
                # Always answer: dying without a reply leaves the
                # client deadlocked on the socket.
                self._queue_error(conn, f"unknown opcode {opcode}")
                conn.close_after_flush = True
                break
            frame_len = header_size + key_len + value_len
            if len(buf) < frame_len:
                break
            key = bytes(buf[header_size : header_size + key_len])
            value = bytes(buf[header_size + key_len : frame_len])
            del buf[:frame_len]
            if self._closing:
                self._queue_error(conn, "server is shutting down")
                conn.close_after_flush = True
                break
            repl = self._replication
            try:
                if opcode == OP_GET:
                    result = connector.get(key)
                    if result is None:
                        conn.outbuf += struct.pack("<BI", REPLY_MISSING, 0)
                    else:
                        conn.outbuf += struct.pack("<BI", REPLY_VALUE, len(result))
                        conn.outbuf += result
                    continue
                # Downstream-first for sync links (see the batch path).
                if repl is not None and repl.sync:
                    repl.forward(opcode, key, value)
                if opcode == OP_PUT:
                    connector.put(key, value)
                elif opcode == OP_MERGE:
                    connector.merge(key, value)
                else:  # OP_DELETE
                    connector.delete(key)
                if repl is not None and not repl.sync:
                    repl.forward(opcode, key, value)
            except _ReplicationError as exc:
                self._queue_error(conn, str(exc))
                continue
            except Exception as exc:  # store failure: report, keep serving
                self._queue_error(conn, f"{type(exc).__name__}: {exc}")
                continue
            conn.outbuf += struct.pack("<BI", REPLY_OK, 0)
        return True

    # -- control plane -------------------------------------------------------

    def _admin(self, command: str, payload: bytes) -> bytes:
        """Execute one :data:`OP_ADMIN` command on the loop thread."""
        args = json.loads(payload.decode("utf-8")) if payload else {}
        if command == "ping":
            return b'{"ok": true}'
        if command == "configure":
            downstream = args.get("downstream")
            sync = bool(args.get("sync", True))
            self._configure_replication(
                tuple(downstream) if downstream else None, sync
            )
            return b'{"ok": true}'
        if command == "stats":
            return json.dumps(self.replication_stats()).encode("utf-8")
        if command == "scan":
            items = list(self._connector.scan(b"", _SCAN_END))
            body = b"".join(
                _BATCH_ITEM.pack(OP_PUT, len(key), len(value)) + key + value
                for key, value in items
            )
            return struct.pack("<I", len(items)) + body
        raise ValueError(f"unknown admin command {command!r}")

    def _configure_replication(
        self, downstream: Optional[Tuple[str, int]], sync: bool
    ) -> None:
        if self._replication is not None:
            self._replication.close()
            self._replication = None
        if downstream is not None:
            self._replication = _ReplicationLink(
                self, downstream[0], int(downstream[1]), sync
            )

    def replication_stats(self) -> Dict[str, object]:
        """Snapshot of the downstream link's counters (all-zero when
        unreplicated).  Plain attribute reads, safe to call from any
        thread; the chaos harness reads a primary's ``pending`` the
        instant before killing it to measure the lost-ack window."""
        link = self._replication
        if link is None:
            return {
                "peer": None,
                "sync": False,
                "ops_sent": 0,
                "ops_acked": 0,
                "pending": 0,
                "errors": 0,
                "broken": False,
                "lag_ms_last": 0.0,
                "lag_ms_max": 0.0,
                "lag_ms_avg": 0.0,
            }
        return link.stats()

    def _queue_error(self, conn: _Connection, message: str) -> None:
        payload = message.encode("utf-8", errors="replace")
        conn.outbuf += struct.pack("<BI", REPLY_ERROR, len(payload))
        conn.outbuf += payload

    def _flush(self, conn: _Connection) -> None:
        sock = conn.sock
        while conn.outbuf:
            try:
                sent = sock.send(conn.outbuf)
            except BlockingIOError:
                break
            except OSError:
                self._close_connection(conn)
                return
            if sent == 0:
                break
            del conn.outbuf[:sent]
        if conn.outbuf:
            self._selector.modify(
                sock, selectors.EVENT_READ | selectors.EVENT_WRITE, conn
            )
        else:
            if conn.close_after_flush:
                self._close_connection(conn)
                return
            self._selector.modify(sock, selectors.EVENT_READ, conn)

    def _close_connection(self, conn: _Connection) -> None:
        if self._connections.pop(conn.sock, None) is None:
            return
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _drain_and_close(self) -> None:
        """Refuse staged requests, flush queued replies, close sockets.

        Runs on the loop thread after ``stop()`` raises ``_closing`` --
        by then any op that was executing has finished and its reply is
        queued, so draining here is what makes ``stop()`` a clean
        barrier between served traffic and ``store.close()``.
        """
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        deadline = time.monotonic() + _DRAIN_DEADLINE_S
        for conn in list(self._connections.values()):
            # complete frames received before shutdown are refused, not
            # silently dropped (the client would hang awaiting a reply)
            if self._process(conn) and conn.outbuf:
                conn.sock.setblocking(True)
                conn.sock.settimeout(max(0.05, deadline - time.monotonic()))
                try:
                    conn.sock.sendall(conn.outbuf)
                except OSError:
                    pass
        for conn in list(self._connections.values()):
            self._close_connection(conn)
        if self._replication is not None:
            self._replication.close()
            self._replication = None
        try:
            self._selector.unregister(self._wake_r)
        except (KeyError, ValueError):
            pass
        self._wake_r.close()
        self._selector.close()

    def _abrupt_close(self) -> None:
        """Tear everything down like a process kill: no request drain,
        no reply flush, connections reset (SO_LINGER 0 sends RST so
        clients see the death immediately instead of a clean FIN)."""
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        for conn in list(self._connections.values()):
            try:
                conn.sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            except OSError:
                pass
            self._close_connection(conn)
        if self._replication is not None:
            self._replication.close()
            self._replication = None
        try:
            self._selector.unregister(self._wake_r)
        except (KeyError, ValueError):
            pass
        self._wake_r.close()
        self._selector.close()

    # -- lifecycle -----------------------------------------------------------

    def kill(self) -> None:
        """Die abruptly, as a ``SIGKILL`` would: in-flight requests are
        never answered, queued replies are dropped, connections are
        reset, and the store is :meth:`~repro.kvstores.api.KVStore.abandon`-ed
        (nothing flushed, background workers hard-stopped).  The chaos
        harness's primitive; contrast :meth:`stop`, which drains."""
        if self._stopped:
            return
        self._killed = True
        self._closing = True
        try:
            self._wake_w.send(b"\x00")
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        else:
            self._abrupt_close()
        try:
            self._wake_w.close()
        except OSError:
            pass
        self._stopped = True
        try:
            self.store.abandon()
        except Exception:
            pass

    def stop(self) -> None:
        """Stop accepting, drain in-flight requests, then close the store.

        The loop thread finishes whatever operation it is executing
        (ops run to completion between ``select()`` rounds), refuses
        anything that arrived after the flag went up, flushes replies,
        and exits; only then -- with no thread left that could touch
        the store -- does ``store.close()`` run.
        """
        if self._stopped:
            return
        self._closing = True
        try:
            self._wake_w.send(b"\x00")
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        elif not self._stopped:
            self._drain_and_close()  # never started; just release sockets
        try:
            self._wake_w.close()
        except OSError:
            pass
        self._stopped = True
        self.store.close()

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class RemoteStoreClient:
    """Connector-compatible client for a :class:`StoreServer`.

    Drop-in for :class:`~repro.kvstores.connectors.StoreConnector`:
    the trace replayer and the performance evaluator can measure an
    external store without code changes.

    ``timeout`` bounds every socket operation (connect, send, receive);
    a server that hangs or dies mid-run raises :class:`RemoteStoreError`
    within that bound instead of wedging the replay.  Pass
    ``retry_policy`` (a :class:`~repro.faults.RetryPolicy`) to have the
    client drop the broken socket, reconnect, and retry the operation
    with the policy's backoff before giving up.
    """

    def __init__(
        self,
        host: str,
        port: int,
        store_name: str = "remote",
        timeout: Optional[float] = DEFAULT_TIMEOUT_S,
        connect_timeout: Optional[float] = None,
        retry_policy: Optional["RetryPolicy"] = None,
    ) -> None:
        self.name = store_name
        self._address = (host, port)
        #: ``host:port``, embedded in every error message -- with N
        #: servers in play, "connection reset" without an address is
        #: undebuggable
        self._peer = f"{host}:{port}"
        self._timeout = timeout
        self._connect_timeout = connect_timeout if connect_timeout is not None else timeout
        self._retry_policy = retry_policy
        self._sock: Optional[socket.socket] = None
        self.reconnects = 0
        #: False once the server proved to be v1; batch calls then fall
        #: back to per-op requests for the life of this client
        self._batch_supported = True
        #: syscalls-per-op accounting: data-path ``sendall`` bursts and
        #: ``recv``/``recv_into`` calls (the pipeline benchmark's
        #: coalescing evidence)
        self.send_calls = 0
        self.recv_calls = 0
        #: pipelined-mode gauges (stay zero for synchronous use)
        self.inflight_depth = 0
        self.flush_coalesced_ops = 0
        self.pipeline_flushes = 0
        self.aborted_windows = 0
        #: reusable frame-assembly + reply-header buffers; the hot path
        #: allocates nothing once these are warm
        self._framebuf = bytearray(4096)
        self._replyhead = bytearray(_REPLY_HEAD.size)
        self._connect()

    # -- connection management ---------------------------------------------

    def _connect(self) -> None:
        with tracing.span("remote.connect", peer=f"{self._address[0]}:{self._address[1]}"):
            try:
                sock = socket.create_connection(
                    self._address, timeout=self._connect_timeout
                )
            except OSError as exc:
                raise RemoteStoreError(
                    f"cannot connect to {self.name} at {self._peer}: {exc}"
                ) from exc
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self._timeout)
        self._sock = sock

    def _drop_socket(self) -> None:
        """Discard a socket whose request/reply framing is no longer
        trustworthy (timeout mid-reply, connection reset)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # -- protocol ----------------------------------------------------------

    def _request_once(self, opcode: int, key: bytes, value: bytes) -> Optional[bytes]:
        if tracing.active() is None:
            return self._request_raw(opcode, key, value)
        with tracing.span("remote.rpc", op=opcode):
            return self._request_raw(opcode, key, value)

    def _request_raw(self, opcode: int, key: bytes, value: bytes) -> Optional[bytes]:
        sock = self._sock
        if sock is None:
            raise RemoteStoreError(
                f"{self.name} client is not connected to {self._peer}"
            )
        need = _HEADER.size + len(key) + len(value)
        _grow(self._framebuf, need)
        _frame_op_into(self._framebuf, 0, opcode, key, value)
        try:
            with memoryview(self._framebuf)[:need] as frame:
                sock.sendall(frame)
            self.send_calls += 1
            self.recv_calls += _recv_into_exact(
                sock, self._replyhead, _REPLY_HEAD.size
            )
            status, length = _REPLY_HEAD.unpack_from(self._replyhead)
            if status == REPLY_VALUE:
                body = bytearray(length)
                self.recv_calls += _recv_into_exact(sock, body, length)
                return bytes(body)
            if status == REPLY_ERROR:
                message = (
                    _recv_exact(sock, length).decode("utf-8", errors="replace")
                    if length
                    else "unspecified server error"
                )
                raise RemoteStoreError(
                    f"{self.name} server at {self._peer} error: {message}"
                )
            if status == REPLY_MISSING:
                return None
            return None  # REPLY_OK
        except socket.timeout as exc:
            self._drop_socket()
            raise RemoteStoreError(
                f"{self.name} operation against {self._peer} timed out "
                f"after {self._timeout}s (server hung or dead)"
            ) from exc
        except (ConnectionError, OSError) as exc:
            self._drop_socket()
            raise RemoteStoreError(
                f"lost connection to {self.name} server at {self._peer}: {exc}"
            ) from exc

    def _attempt(self, opcode: int, key: bytes, value: bytes) -> Optional[bytes]:
        if self._sock is None:
            self._connect()
            self.reconnects += 1
            tracing.instant("remote.reconnect", total=self.reconnects)
        return self._request_once(opcode, key, value)

    def _request(self, opcode: int, key: bytes, value: bytes = b"") -> Optional[bytes]:
        if self._retry_policy is None:
            return self._request_once(opcode, key, value)
        return self._retry_policy.call(
            self._attempt, opcode, key, value, retry_on=(RemoteStoreError,)
        )

    # -- batch protocol (v2) -------------------------------------------------

    def _batch_request_once(
        self, items: Sequence[Tuple[int, bytes, bytes]]
    ) -> List[Tuple[int, bytes]]:
        """Send one :data:`OP_BATCH` frame; return ``(status, data)``
        per op.  Raises :class:`_BatchUnsupportedError` against a v1
        server (which also closes the connection, so the socket is
        dropped for the reconnecting per-op fallback)."""
        if tracing.active() is None:
            return self._batch_request_raw(items)
        with tracing.span("remote.batch_rpc", n=len(items)):
            return self._batch_request_raw(items)

    def _batch_request_raw(
        self, items: Sequence[Tuple[int, bytes, bytes]]
    ) -> List[Tuple[int, bytes]]:
        self.batch_send(items)
        return self.batch_recv(len(items))

    def batch_send(self, items: Sequence[Tuple[int, bytes, bytes]]) -> None:
        """Frame and send one :data:`OP_BATCH` request WITHOUT reading
        the reply -- the scatter half of the cluster layer's
        scatter-gather fan-out.  Every :meth:`batch_send` must be paired
        with a :meth:`batch_recv` on the same connection (the protocol
        is strictly ordered, so replies correlate positionally)."""
        sock = self._sock
        if sock is None:
            raise RemoteStoreError(
                f"{self.name} client is not connected to {self._peer}"
            )
        need = _frame_batch_into(self._framebuf, items)
        try:
            with memoryview(self._framebuf)[:need] as frame:
                sock.sendall(frame)
            self.send_calls += 1
        except socket.timeout as exc:
            self._drop_socket()
            raise RemoteStoreError(
                f"{self.name} operation against {self._peer} timed out "
                f"after {self._timeout}s (server hung or dead)"
            ) from exc
        except (ConnectionError, OSError) as exc:
            self._drop_socket()
            raise RemoteStoreError(
                f"lost connection to {self.name} server at {self._peer}: {exc}"
            ) from exc

    def batch_recv(self, count: int) -> List[Tuple[int, bytes]]:
        """Read one batch reply for a ``count``-op :meth:`batch_send` --
        the gather half.  Against a v1 server this marks the client
        permanently downgraded, reconnects (the v1 server closes the
        connection after its error), and raises
        :class:`_BatchUnsupportedError` for the caller's per-op
        fallback."""
        sock = self._sock
        if sock is None:
            raise RemoteStoreError(
                f"{self.name} client is not connected to {self._peer}"
            )
        try:
            self.recv_calls += _recv_into_exact(
                sock, self._replyhead, _REPLY_HEAD.size
            )
            status, length = _REPLY_HEAD.unpack_from(self._replyhead)
            if status == REPLY_ERROR:
                message = (
                    _recv_exact(sock, length).decode("utf-8", errors="replace")
                    if length
                    else "unspecified server error"
                )
                if "unknown opcode" in message:
                    # v1 server: it closes the connection after the
                    # error, so discard the socket before falling back.
                    self._drop_socket()
                    self._batch_supported = False
                    self._reconnect_for_fallback()
                    raise _BatchUnsupportedError(message)
                raise RemoteStoreError(
                    f"{self.name} server at {self._peer} error: {message}"
                )
            if status != REPLY_BATCH:
                self._drop_socket()
                raise RemoteStoreError(
                    f"{self.name} server at {self._peer} protocol violation: "
                    f"reply {status} to a batch"
                )
            body = bytearray(length)
            self.recv_calls += _recv_into_exact(sock, body, length)
            if body == _OK_ITEM * count:
                # All writes succeeded: one memcmp instead of per-item
                # unpacking (the hot shape of batched write replay).
                return _BATCH_ALL_OK
            replies: List[Tuple[int, bytes]] = []
            offset = 0
            for _ in range(count):
                item_status, item_len = _REPLY_ITEM.unpack_from(body, offset)
                offset += _REPLY_ITEM.size
                replies.append(
                    (item_status, bytes(body[offset : offset + item_len]))
                )
                offset += item_len
            return replies
        except struct.error as exc:
            self._drop_socket()
            raise RemoteStoreError(
                f"{self.name} server at {self._peer} sent a malformed "
                f"batch reply: {exc}"
            ) from exc
        except socket.timeout as exc:
            self._drop_socket()
            raise RemoteStoreError(
                f"{self.name} operation against {self._peer} timed out "
                f"after {self._timeout}s (server hung or dead)"
            ) from exc
        except (ConnectionError, OSError) as exc:
            self._drop_socket()
            raise RemoteStoreError(
                f"lost connection to {self.name} server at {self._peer}: {exc}"
            ) from exc

    def _reconnect_for_fallback(self) -> None:
        """A v1 server closes the connection after rejecting
        :data:`OP_BATCH`; re-establish it so the per-op fallback can
        proceed even without a retry policy."""
        if self._sock is None:
            self._connect()
            self.reconnects += 1

    def _batch_attempt(
        self, items: Sequence[Tuple[int, bytes, bytes]]
    ) -> List[Tuple[int, bytes]]:
        if self._sock is None:
            self._connect()
            self.reconnects += 1
        return self._batch_request_once(items)

    def _batch_request(
        self, items: Sequence[Tuple[int, bytes, bytes]]
    ) -> List[Tuple[int, bytes]]:
        if self._retry_policy is None:
            return self._batch_request_once(items)
        return self._retry_policy.call(
            self._batch_attempt, items, retry_on=(RemoteStoreError,)
        )

    # -- control plane -------------------------------------------------------

    def admin(self, command: str, payload: Optional[dict] = None) -> bytes:
        """Send one :data:`OP_ADMIN` request; returns the raw response.

        Used by the cluster layer for liveness probes (``ping``),
        replication-chain reconfiguration (``configure``), counter
        harvesting (``stats``), and migration snapshots (``scan``).
        Honours the client's retry policy like any data operation.
        """
        body = json.dumps(payload).encode("utf-8") if payload else b""
        return self._request(OP_ADMIN, command.encode("utf-8"), body) or b""

    def admin_json(self, command: str, payload: Optional[dict] = None) -> dict:
        """:meth:`admin`, decoding the JSON response."""
        return json.loads(self.admin(command, payload).decode("utf-8"))

    def admin_scan(self) -> List[Tuple[bytes, bytes]]:
        """Full key/value snapshot of the server's store, decoded from
        the ``scan`` admin command's binary framing.  Requires a
        scan-capable backing store (memory, B+Tree, LSM -- not FASTER)."""
        data = self.admin("scan")
        (count,) = struct.unpack_from("<I", data, 0)
        items = _decode_batch_items(data[4:], count)
        return [(key, value) for _, key, value in items]

    @property
    def peer(self) -> str:
        """``host:port`` of the server this client targets."""
        return self._peer

    # -- connector API -------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        return self._request(OP_GET, key)

    def put(self, key: bytes, value: bytes) -> None:
        self._request(OP_PUT, key, value)

    def merge(self, key: bytes, operand: bytes) -> None:
        self._request(OP_MERGE, key, operand)

    def delete(self, key: bytes) -> None:
        self._request(OP_DELETE, key)

    def multi_get(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        """Vectored get in ONE round-trip (protocol v2); transparently
        degrades to per-key requests against a v1 server."""
        if self._batch_supported and keys:
            try:
                replies = self._batch_request([(OP_GET, key, b"") for key in keys])
            except _BatchUnsupportedError:
                self._batch_supported = False
                self._reconnect_for_fallback()
            else:
                out: List[Optional[bytes]] = []
                for status, data in replies:
                    if status == REPLY_VALUE:
                        out.append(data)
                    elif status == REPLY_MISSING:
                        out.append(None)
                    else:
                        raise RemoteStoreError(
                            f"{self.name} server at {self._peer} error: "
                            f"{data.decode('utf-8', errors='replace')}"
                        )
                return out
        get = self.get
        return [get(key) for key in keys]

    def apply_batch(self, ops: Sequence[BatchOp]) -> None:
        """Write batch in ONE round-trip (protocol v2); transparently
        degrades to per-op requests against a v1 server."""
        if self._batch_supported and ops:
            try:
                replies = self._batch_request(list(ops))
            except _BatchUnsupportedError:
                self._batch_supported = False
                self._reconnect_for_fallback()
            else:
                if replies is _BATCH_ALL_OK:
                    return
                for status, data in replies:
                    if status == REPLY_ERROR:
                        raise RemoteStoreError(
                            f"{self.name} server at {self._peer} error: "
                            f"{data.decode('utf-8', errors='replace')}"
                        )
                return
        for opcode, key, value in ops:
            if opcode == OP_PUT:
                self.put(key, value)
            elif opcode == OP_MERGE:
                self.merge(key, value)
            elif opcode == OP_DELETE:
                self.delete(key)
            else:
                raise ValueError(
                    f"apply_batch is write-only; cannot apply opcode {opcode}"
                )

    def take_background_ns(self) -> int:
        return 0  # network time is genuinely client-visible

    def flush(self) -> None:
        """The server owns durability; nothing to do client-side."""

    def pipeline(self, depth: int, on_complete) -> "_RemotePipeline":
        """Open a bounded in-flight window over this connection (see
        :class:`_RemotePipeline`)."""
        return _RemotePipeline(self, depth, on_complete)

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.sendall(_HEADER.pack(OP_CLOSE, 0, 0))
        except OSError:
            pass
        self._drop_socket()

    def __enter__(self) -> "RemoteStoreClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _RemotePipeline(PipelineSession):
    """A bounded in-flight window over one client connection.

    The protocol is strictly ordered per connection, so correlation is
    positional: op k's reply is the k-th reply frame, no IDs on the
    wire, v1/v2 frames unchanged.  Submitted ops are staged (framed
    into one reusable buffer) and flushed in coalesced ``sendall``
    bursts; replies drain through a chunked ``recv_into`` loop that
    completes ops FIFO.  The window never exceeds ``depth`` un-acked
    ops; once full, the session flushes and drains down to ``depth//2``
    so reply reads overlap the next burst's framing (half-window
    hysteresis -- at depth 16 a steady-state burst carries 8 ops per
    ``sendall``/``recv`` pair instead of 1 per round trip).

    Failure semantics: a transport failure (timeout, reset, dead
    server) aborts the whole window -- every un-acked op is re-queued
    and, under the client's single :class:`RetryPolicy` budget, re-sent
    after a reconnect.  Re-sent ops are at-least-once, exactly like the
    synchronous client's retry (idempotent put/delete, benchmark-
    acceptable merge).  A ``REPLY_ERROR`` frame is NOT a transport
    failure: the server processed and rejected that one op, so it is
    completed exceptionally (raised to the submitter) and never
    re-sent.  Against a v1 peer (permanent batch downgrade) the window
    collapses to 1: v1 answers unknown opcodes with error-then-close,
    so there is no reply stream worth coalescing against.
    """

    def __init__(self, client: RemoteStoreClient, depth: int, on_complete) -> None:
        super().__init__(client, depth, on_complete)
        self._client = client
        #: framed-not-yet-sent (opcode, key, value, arrival_ns)
        self._staged: deque = deque()
        #: on the wire awaiting replies, FIFO == reply order
        self._inflight: deque = deque()
        self._recvbuf = bytearray()
        self._chunkbuf = bytearray(1 << 16)
        self._sendbuf = bytearray(4096)
        self.aborted_windows = 0

    @property
    def depth(self) -> int:
        return self.requested_depth if self._client._batch_supported else 1

    @property
    def pending(self) -> int:
        return len(self._staged) + len(self._inflight)

    def submit(self, opcode: int, key: bytes, value: bytes,
               arrival_ns: int) -> None:
        self._staged.append((opcode, key, value, arrival_ns))
        depth = self.depth
        if len(self._staged) + len(self._inflight) >= depth:
            self.flush()
            self._collect(depth // 2)

    def flush(self) -> None:
        if not self._staged:
            return
        if tracing.active() is None:
            self._flush_raw()
            return
        with tracing.span(
            "remote.pipeline_flush",
            n=len(self._staged), inflight=len(self._inflight),
        ):
            self._flush_raw()

    def _flush_raw(self) -> None:
        try:
            self._send_staged()
        except RemoteStoreError as exc:
            self._recover(exc)

    def _send_staged(self) -> None:
        """One coalesced ``sendall`` for every staged op; on success
        they move to the in-flight queue.  Raises
        :class:`RemoteStoreError` on transport failure (socket
        dropped, ops left staged for the caller's recovery)."""
        client = self._client
        staged = self._staged
        sock = client._sock
        if sock is None:
            raise RemoteStoreError(
                f"{client.name} client is not connected to {client._peer}"
            )
        buf = self._sendbuf
        need = 0
        for _, key, value, _arrival in staged:
            need += _HEADER.size + len(key) + len(value)
        _grow(buf, need)
        pos = 0
        for opcode, key, value, _arrival in staged:
            pos = _frame_op_into(buf, pos, opcode, key, value)
        try:
            with memoryview(buf)[:need] as frame:
                sock.sendall(frame)
        except socket.timeout as exc:
            client._drop_socket()
            raise RemoteStoreError(
                f"{client.name} operation against {client._peer} timed out "
                f"after {client._timeout}s (server hung or dead)"
            ) from exc
        except (ConnectionError, OSError) as exc:
            client._drop_socket()
            raise RemoteStoreError(
                f"lost connection to {client.name} server at "
                f"{client._peer}: {exc}"
            ) from exc
        n = len(staged)
        client.send_calls += 1
        self._inflight.extend(staged)
        staged.clear()
        self.flushes += 1
        self.coalesced_ops += n
        client.pipeline_flushes += 1
        client.flush_coalesced_ops += n
        client.inflight_depth = len(self._inflight)

    def drain(self) -> None:
        """Flush staged frames and wait for every in-flight reply."""
        self.flush()
        self._collect(0)

    def _collect(self, target: int) -> None:
        while len(self._inflight) > target:
            self._recv_some()
        self._client.inflight_depth = len(self._inflight)

    def _recv_some(self) -> None:
        client = self._client
        sock = client._sock
        if sock is None:
            self._recover(RemoteStoreError(
                f"{client.name} client is not connected to {client._peer}"
            ))
            return
        try:
            n = sock.recv_into(self._chunkbuf)
        except socket.timeout as exc:
            client._drop_socket()
            self._recover(RemoteStoreError(
                f"{client.name} operation against {client._peer} timed out "
                f"after {client._timeout}s (server hung or dead)"
            ), cause=exc)
            return
        except (ConnectionError, OSError) as exc:
            client._drop_socket()
            self._recover(RemoteStoreError(
                f"lost connection to {client.name} server at "
                f"{client._peer}: {exc}"
            ), cause=exc)
            return
        if n == 0:
            client._drop_socket()
            self._recover(RemoteStoreError(
                f"lost connection to {client.name} server at "
                f"{client._peer}: peer closed the connection"
            ))
            return
        client.recv_calls += 1
        with memoryview(self._chunkbuf)[:n] as chunk:
            self._recvbuf += chunk
        self._complete_replies()

    def _complete_replies(self) -> None:
        """Parse every complete reply frame staged in the receive
        buffer and complete its in-flight op, oldest first."""
        client = self._client
        buf = self._recvbuf
        inflight = self._inflight
        on_complete = self._on_complete
        head_size = _REPLY_HEAD.size
        pos = 0
        now = time.perf_counter_ns()
        try:
            while len(buf) - pos >= head_size:
                status, length = _REPLY_HEAD.unpack_from(buf, pos)
                if len(buf) - pos < head_size + length:
                    break
                body_start = pos + head_size
                pos = body_start + length
                if not inflight:
                    client._drop_socket()
                    raise RemoteStoreError(
                        f"{client.name} server at {client._peer} protocol "
                        f"violation: reply {status} with no request in flight"
                    )
                opcode, _key, _value, arrival = inflight.popleft()
                if status == REPLY_VALUE:
                    on_complete(opcode, arrival, now,
                                bytes(buf[body_start:pos]))
                elif status == REPLY_OK or status == REPLY_MISSING:
                    on_complete(opcode, arrival, now, None)
                elif status == REPLY_ERROR:
                    message = bytes(buf[body_start:pos]).decode(
                        "utf-8", errors="replace"
                    ) or "unspecified server error"
                    raise RemoteStoreError(
                        f"{client.name} server at {client._peer} error: "
                        f"{message}"
                    )
                else:
                    client._drop_socket()
                    raise RemoteStoreError(
                        f"{client.name} server at {client._peer} protocol "
                        f"violation: reply {status} to a pipelined op"
                    )
        finally:
            del buf[:pos]
        self._client.inflight_depth = len(inflight)

    def _recover(self, error: RemoteStoreError,
                 cause: Optional[BaseException] = None) -> None:
        """Transport failure: abort the window, re-queue every un-acked
        op, and -- under the client's retry policy -- reconnect and
        re-send them.  Without a policy the pending ops stay staged and
        the error propagates (an outer layer may reconnect and flush)."""
        client = self._client
        client._drop_socket()
        pending = list(self._inflight)
        pending.extend(self._staged)
        self._inflight.clear()
        self._staged.clear()
        self._recvbuf.clear()
        self._staged.extend(pending)
        self.aborted_windows += 1
        client.aborted_windows += 1
        client.inflight_depth = 0
        tracing.instant("remote.pipeline_abort", pending=len(pending))
        policy = client._retry_policy
        if policy is None:
            raise error from cause
        last: Exception = error
        for delay in policy.base_delays():
            time.sleep(policy._jittered(delay))
            try:
                client._connect()
            except RemoteStoreError as exc:
                last = exc
                continue
            client.reconnects += 1
            tracing.instant("remote.reconnect", total=client.reconnects)
            try:
                self._send_staged()
            except RemoteStoreError as exc:
                last = exc
                continue
            return
        raise last from cause
