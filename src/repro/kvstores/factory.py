"""Factory for the four evaluated stores (plus the in-memory oracle)."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .api import KVStore, MergeOperator
from .btree import BTreeConfig, BTreeStore
from .connectors import StoreConnector, connect
from .faster import FasterConfig, FasterStore
from .lsm import LetheConfig, LetheStore, LSMConfig, RocksLSMStore
from .memory import InMemoryStore
from .storage import FileStorage

STORE_NAMES = ("rocksdb", "lethe", "faster", "berkeleydb", "memory")


def create_store(
    name: str,
    merge_operator: Optional[MergeOperator] = None,
    **config_overrides,
) -> KVStore:
    """Instantiate a store by its paper name.

    ``config_overrides`` are forwarded to the store's config dataclass,
    e.g. ``create_store("rocksdb", write_buffer_size=1 << 20)``.  The
    reserved override ``storage_dir`` is not a config field: it backs
    the store with a :class:`~repro.kvstores.storage.FileStorage`
    rooted there (how multi-process replay gives each worker its own
    on-disk partition).
    """
    storage_dir = config_overrides.pop("storage_dir", None)
    storage = FileStorage(storage_dir) if storage_dir is not None else None
    builders: Dict[str, Callable[[], KVStore]] = {
        "rocksdb": lambda: RocksLSMStore(
            LSMConfig(**config_overrides), merge_operator, storage
        ),
        "lethe": lambda: LetheStore(
            LetheConfig(**config_overrides), merge_operator, storage
        ),
        "faster": lambda: FasterStore(
            FasterConfig(**config_overrides), merge_operator, storage
        ),
        "berkeleydb": lambda: BTreeStore(BTreeConfig(**config_overrides), storage),
        "memory": lambda: InMemoryStore(merge_operator),
    }
    if storage is not None and name == "memory":
        raise ValueError("the in-memory store does not take a storage_dir")
    try:
        builder = builders[name]
    except KeyError:
        raise ValueError(
            f"unknown store {name!r}; expected one of {STORE_NAMES}"
        ) from None
    return builder()


def create_connector(
    name: str,
    merge_operator: Optional[MergeOperator] = None,
    **config_overrides,
) -> StoreConnector:
    """Create a store and wrap it in the right connector in one call."""
    store = create_store(name, merge_operator, **config_overrides)
    return connect(store, merge_operator)
