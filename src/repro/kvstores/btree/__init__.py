"""BerkeleyDB-like B+Tree store."""

from .node import InternalNode, LeafNode, decode_node
from .pagecache import PageCache
from .store import BTreeConfig, BTreeStore

__all__ = ["BTreeConfig", "BTreeStore", "InternalNode", "LeafNode", "PageCache", "decode_node"]
