"""Page cache for the B+Tree store.

All live pages are reached through this cache.  Pages evicted by the
byte budget are serialized into storage; a later access deserializes
them back -- charging realistic miss work without real disk latency.

Persisted pages carry the checksummed v2 framing from
:mod:`repro.kvstores.btree.node` (unless the cache was configured with
``ChecksumKind.NONE``), and every page-in verifies the frame before
deserializing.  A damaged page raises
:class:`~repro.kvstores.integrity.CorruptionError`; :meth:`scrub`
repairs corrupt blobs whose page is still resident in the cache by
rewriting them from the in-memory copy.
"""

from __future__ import annotations

import time
from typing import Optional, Set

from ...obs import tracing
from ..cache import LRUCache
from ..integrity import ChecksumKind, CorruptionError, ScrubFinding, ScrubReport, timed_scrub
from ..storage import MemoryStorage, Storage, StorageError
from .node import decode_page, encode_page


class PageCache:
    def __init__(
        self,
        capacity_bytes: int = 256 * 1024,
        storage: Optional[Storage] = None,
        checksum_kind: ChecksumKind = ChecksumKind.NONE,
    ) -> None:
        self.storage = storage if storage is not None else MemoryStorage()
        self.checksum_kind = checksum_kind
        self._dirty: Set[int] = set()
        self._cache: LRUCache = LRUCache(
            capacity_bytes,
            sizer=lambda node: node.size_bytes,
            on_evict=self._write_back,
        )
        self._on_disk: Set[int] = set()
        self._next_page_id = 0
        self.page_ins = 0
        self.page_outs = 0
        self.background_ns = 0

    # ------------------------------------------------------------------

    def allocate(self, node) -> int:
        page_id = self._next_page_id
        self._next_page_id += 1
        self._cache.put(page_id, node)
        self._dirty.add(page_id)
        return page_id

    def get(self, page_id: int):
        node = self._cache.get(page_id)
        if node is not None:
            return node
        if page_id not in self._on_disk:
            raise KeyError(f"unknown page: {page_id}")
        with tracing.span("btree.page_in", page=page_id) as sp:
            raw = self.storage.read(self._blob(page_id))
            node = decode_page(raw, self._blob(page_id))
            sp.add(bytes=len(raw))
        self.page_ins += 1
        self._cache.put(page_id, node)
        return node

    def mark_dirty(self, page_id: int) -> None:
        self._dirty.add(page_id)
        node = self._cache.peek(page_id)
        if node is not None:
            # Re-insert to refresh the byte accounting after mutation.
            self._cache.put(page_id, node)

    def update(self, page_id: int, node) -> None:
        """Install a mutated node object and mark it dirty.

        Safe even if the page was evicted while the caller held a
        reference to the node: the object is simply re-cached.
        """
        self._cache.put(page_id, node)
        self._dirty.add(page_id)

    def free(self, page_id: int) -> None:
        self._cache.invalidate(page_id)
        self._dirty.discard(page_id)
        if page_id in self._on_disk:
            self.storage.delete(self._blob(page_id))
            self._on_disk.discard(page_id)

    def flush(self) -> None:
        """Write back every dirty resident page (keeps them cached)."""
        for page_id in list(self._dirty):
            node = self._cache.peek(page_id)
            if node is not None:
                self._persist(page_id, node)
        self._dirty.clear()

    def scrub(self) -> ScrubReport:
        """Verify every persisted page; repair from resident copies.

        A corrupt blob whose page still lives in the cache is rewritten
        from the in-memory node (repaired); with no resident copy the
        page is unrecoverable.
        """
        report = ScrubReport()
        with timed_scrub(report):
            for page_id in sorted(self._on_disk):
                blob = self._blob(page_id)
                report.structures_checked += 1
                try:
                    raw = self.storage.read(blob)
                except StorageError as exc:
                    self._scrub_repair(report, page_id, blob, f"unreadable page: {exc}")
                    continue
                try:
                    decode_page(raw, blob)
                except CorruptionError as exc:
                    self._scrub_repair(report, page_id, blob, exc.detail, exc.offset)
        return report

    def _scrub_repair(
        self, report: ScrubReport, page_id: int, blob: str, detail: str, offset: int = 0
    ) -> None:
        node = self._cache.peek(page_id)
        if node is not None:
            self._persist(page_id, node)
            report.add(ScrubFinding(blob, offset, detail, repaired=True))
        else:
            report.add(ScrubFinding(blob, offset, detail, repaired=False))

    # ------------------------------------------------------------------

    def _write_back(self, page_id: int, node) -> None:
        # Dirty-page write-back is trickle-flushed in the background by
        # BerkeleyDB; tracked so latency reporting can exclude it.
        if page_id in self._dirty:
            begin = time.perf_counter_ns()
            with tracing.span("btree.page_out", page=page_id):
                self._persist(page_id, node)
            self._dirty.discard(page_id)
            self.background_ns += time.perf_counter_ns() - begin

    def _persist(self, page_id: int, node) -> None:
        self.storage.write(self._blob(page_id), encode_page(node, self.checksum_kind))
        self._on_disk.add(page_id)
        self.page_outs += 1

    @staticmethod
    def _blob(page_id: int) -> str:
        return f"btree-page-{page_id:08d}"

    # -- stats -------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def resident_pages(self) -> int:
        return len(self._cache)
