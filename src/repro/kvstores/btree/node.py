"""B+Tree page formats.

Two node kinds, both serializable so the page cache can evict them to
storage and page them back in (the genuine work a disk-backed B+Tree
performs on a cache miss):

* **leaf** -- sorted parallel key/value arrays plus a next-leaf pointer
  for range scans
* **internal** -- sorted separator keys with ``len(keys) + 1`` children;
  child ``i`` holds keys < ``keys[i]``, the last child holds the rest

Persisted pages come in two framings:

* **v1 (legacy)** -- the raw node encoding; its first byte is the node
  marker (0 or 1), so it never collides with the v2 magic.
* **v2 (checksummed)** -- ``0xB7 | version | checksum-kind | crc:4``
  followed by the v1 payload.  :func:`decode_page` verifies the CRC
  before deserializing and raises
  :class:`~repro.kvstores.integrity.CorruptionError` on damage.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ..integrity import ChecksumKind, CorruptionError, checksum

_LEAF_MARKER = 0
_INTERNAL_MARKER = 1
_HEADER = struct.Struct("<BIq")  # marker, entry count, next-leaf id (-1 = none)
_LEN = struct.Struct("<I")

PAGE_MAGIC = 0xB7
PAGE_VERSION = 2
_PAGE_HEADER = struct.Struct("<BBBI")  # magic, version, checksum kind, crc


class LeafNode:
    __slots__ = ("keys", "values", "next_leaf")

    is_leaf = True

    def __init__(
        self,
        keys: Optional[List[bytes]] = None,
        values: Optional[List[bytes]] = None,
        next_leaf: Optional[int] = None,
    ) -> None:
        self.keys: List[bytes] = keys if keys is not None else []
        self.values: List[bytes] = values if values is not None else []
        self.next_leaf = next_leaf

    @property
    def size_bytes(self) -> int:
        return sum(len(k) + len(v) + 8 for k, v in zip(self.keys, self.values)) + 16

    def encode(self) -> bytes:
        parts = [
            _HEADER.pack(
                _LEAF_MARKER,
                len(self.keys),
                self.next_leaf if self.next_leaf is not None else -1,
            )
        ]
        for key, value in zip(self.keys, self.values):
            parts.append(_LEN.pack(len(key)))
            parts.append(key)
            parts.append(_LEN.pack(len(value)))
            parts.append(value)
        return b"".join(parts)


class InternalNode:
    __slots__ = ("keys", "children")

    is_leaf = False

    def __init__(
        self,
        keys: Optional[List[bytes]] = None,
        children: Optional[List[int]] = None,
    ) -> None:
        self.keys: List[bytes] = keys if keys is not None else []
        self.children: List[int] = children if children is not None else []

    @property
    def size_bytes(self) -> int:
        return sum(len(k) + 12 for k in self.keys) + 24

    def encode(self) -> bytes:
        parts = [_HEADER.pack(_INTERNAL_MARKER, len(self.keys), -1)]
        for key in self.keys:
            parts.append(_LEN.pack(len(key)))
            parts.append(key)
        parts.append(_LEN.pack(len(self.children)))
        for child in self.children:
            parts.append(struct.pack("<q", child))
        return b"".join(parts)


def encode_page(node, kind: ChecksumKind = ChecksumKind.NONE) -> bytes:
    """Serialize ``node`` for persistence.

    With ``ChecksumKind.NONE`` this is the legacy v1 payload,
    byte-identical to what older builds wrote; otherwise the payload is
    wrapped in the v2 checksummed frame.
    """
    payload = node.encode()
    if kind is ChecksumKind.NONE:
        return payload
    return _PAGE_HEADER.pack(PAGE_MAGIC, PAGE_VERSION, int(kind), checksum(payload, kind)) + payload


def decode_page(data: bytes, blob: str = "?"):
    """Reconstruct a persisted page of either framing.

    Raises :class:`CorruptionError` when the frame is damaged: bad CRC,
    truncated header, unknown checksum kind, or a legacy payload whose
    first byte is not a valid node marker.
    """
    if not data:
        raise CorruptionError(blob, 0, "empty page")
    first = data[0]
    if first == PAGE_MAGIC:
        if len(data) < _PAGE_HEADER.size:
            raise CorruptionError(blob, 0, f"torn page header ({len(data)} bytes)")
        _, version, kind_value, crc = _PAGE_HEADER.unpack_from(data, 0)
        if version != PAGE_VERSION:
            raise CorruptionError(blob, 1, f"unknown page version {version}")
        try:
            kind = ChecksumKind(kind_value)
        except ValueError:
            raise CorruptionError(blob, 2, f"unknown checksum kind {kind_value}") from None
        payload = bytes(data[_PAGE_HEADER.size :])
        if checksum(payload, kind) != crc:
            raise CorruptionError(blob, _PAGE_HEADER.size, "page checksum mismatch")
    elif first in (_LEAF_MARKER, _INTERNAL_MARKER):
        payload = data
    else:
        raise CorruptionError(blob, 0, f"unrecognized page marker {first:#04x}")
    try:
        return decode_node(payload)
    except (struct.error, ValueError, IndexError) as exc:
        raise CorruptionError(blob, 0, f"undecodable page: {exc}") from None


def decode_node(data: bytes):
    """Reconstruct a node evicted to storage."""
    marker, count, next_leaf = _HEADER.unpack_from(data, 0)
    offset = _HEADER.size
    keys: List[bytes] = []

    def read_blob() -> bytes:
        nonlocal offset
        (length,) = _LEN.unpack_from(data, offset)
        offset += _LEN.size
        blob = bytes(data[offset : offset + length])
        offset += length
        return blob

    if marker == _LEAF_MARKER:
        values: List[bytes] = []
        for _ in range(count):
            keys.append(read_blob())
            values.append(read_blob())
        return LeafNode(keys, values, next_leaf if next_leaf >= 0 else None)

    for _ in range(count):
        keys.append(read_blob())
    (child_count,) = _LEN.unpack_from(data, offset)
    offset += _LEN.size
    children: List[int] = []
    for _ in range(child_count):
        (child,) = struct.unpack_from("<q", data, offset)
        offset += 8
        children.append(child)
    return InternalNode(keys, children)
