"""BerkeleyDB-like B+Tree store.

The paper benchmarks the B+Tree flavour of BerkeleyDB with a 256 MB
cache.  Traits this implementation preserves:

* sorted pages with in-place leaf updates (fast for update-heavy
  streaming workloads, Figures 12-13)
* no lazy merge: a streaming "merge" becomes read-update-write, which
  copies a growing window bucket on every event (why BerkeleyDB loses
  the holistic workloads)
* every page access goes through a byte-budgeted page cache; misses pay
  deserialization just as BerkeleyDB pays a page-in
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from operator import itemgetter
from typing import Iterator, List, Optional, Tuple

from ..api import OP_DELETE, OP_MERGE, OP_PUT, KVStore
from ..integrity import ScrubReport, resolve_checksum_kind
from ..storage import Storage
from .node import InternalNode, LeafNode
from .pagecache import PageCache


@dataclass
class BTreeConfig:
    """The paper runs BerkeleyDB's B+Tree with a 256 MB cache; the
    default here is the same at 1/1000 scale."""

    order: int = 64  # max keys per page
    cache_bytes: int = 256 * 1024
    #: rebalance (borrow/merge) pages that fall below order // 2 keys.
    #: BerkeleyDB reclaims lazily by default; enabling this keeps the
    #: tree compact under streaming's delete-heavy workloads.
    rebalance_on_delete: bool = True
    #: checksum algorithm for persisted pages: "none", "crc32",
    #: "crc32c", or None/"default" for the platform default
    checksum: Optional[str] = None


@dataclass
class _SplitResult:
    separator: bytes
    right_page: int


class BTreeStore(KVStore):
    name = "berkeleydb"

    def __init__(
        self,
        config: Optional[BTreeConfig] = None,
        storage: Optional[Storage] = None,
    ) -> None:
        super().__init__()
        self.config = config or BTreeConfig()
        if self.config.order < 4:
            raise ValueError("order must be at least 4")
        self.checksum_kind = resolve_checksum_kind(self.config.checksum)
        self._pages = PageCache(self.config.cache_bytes, storage, self.checksum_kind)
        self._root_id = self._pages.allocate(LeafNode())
        self._height = 1
        self._count = 0

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        self.stats.gets += 1
        leaf, _ = self._descend(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            value = leaf.values[index]
            self.stats.bytes_read += len(value)
            return value
        return None

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self.stats.puts += 1
        self.stats.bytes_written += len(key) + len(value)
        split = self._insert(self._root_id, key, value, self._height)
        if split is not None:
            new_root = InternalNode([split.separator], [self._root_id, split.right_page])
            self._root_id = self._pages.allocate(new_root)
            self._height += 1

    def delete(self, key: bytes) -> None:
        self._check_open()
        self.stats.deletes += 1
        if not self.config.rebalance_on_delete:
            leaf, page_id = self._descend(key)
            index = bisect.bisect_left(leaf.keys, key)
            if index < len(leaf.keys) and leaf.keys[index] == key:
                del leaf.keys[index]
                del leaf.values[index]
                self._pages.update(page_id, leaf)
                self._count -= 1
            return
        self._delete_rebalancing(self._root_id, key)
        root = self._pages.get(self._root_id)
        if not root.is_leaf and len(root.children) == 1:
            # The root collapsed to a single child: shrink the tree.
            old_root = self._root_id
            self._root_id = root.children[0]
            self._pages.free(old_root)
            self._height -= 1

    # ------------------------------------------------------------------
    # Batched operations
    # ------------------------------------------------------------------

    def multi_get(self, keys) -> List[Optional[bytes]]:
        """Vectored get: probe keys in sorted order so consecutive keys
        landing in the same leaf reuse one descent (BerkeleyDB's bulk-get
        amortization)."""
        self._check_open()
        self.stats.gets += len(keys)
        resolved = {}
        leaf: Optional[LeafNode] = None
        for key in sorted(set(keys)):
            if (
                leaf is None
                or not leaf.keys
                or key < leaf.keys[0]
                or key > leaf.keys[-1]
            ):
                leaf, _ = self._descend(key)
            index = bisect.bisect_left(leaf.keys, key)
            if index < len(leaf.keys) and leaf.keys[index] == key:
                value = leaf.values[index]
                self.stats.bytes_read += len(value)
                resolved[key] = value
            else:
                resolved[key] = None
        return [resolved[key] for key in keys]

    def apply_batch(self, ops) -> None:
        """Key-sorted write batch amortizing page-cache descents.

        The sort is stable, so multiple ops on the same key keep their
        order; ops on distinct keys commute, so sorting is safe.  Merges
        are rejected exactly as the per-op path does (the
        read-modify-write connector rewrites them before they get here).
        """
        self._check_open()
        for opcode, key, value in sorted(ops, key=itemgetter(1)):
            if opcode == OP_PUT:
                self.put(key, value)
            elif opcode == OP_DELETE:
                self.delete(key)
            elif opcode == OP_MERGE:
                self.merge(key, value)
            else:
                raise ValueError(f"apply_batch is write-only; cannot apply opcode {opcode}")

    def scan(self, start: bytes, end: bytes) -> Iterator[Tuple[bytes, bytes]]:
        self._check_open()
        leaf, _ = self._descend(start)
        while leaf is not None:
            index = bisect.bisect_left(leaf.keys, start)
            for key, value in zip(leaf.keys[index:], leaf.values[index:]):
                if key >= end:
                    return
                yield key, value
            start = b""  # only the first leaf needs the lower bound
            if leaf.next_leaf is None:
                return
            leaf = self._pages.get(leaf.next_leaf)

    def flush(self) -> None:
        self._pages.flush()

    def storage_backend(self) -> Storage:
        return self._pages.storage

    def scrub(self) -> ScrubReport:
        """Verify every persisted page; repair from resident copies."""
        report = self._pages.scrub()
        self.integrity.absorb(report)
        return report

    def take_background_ns(self) -> int:
        spent, self._pages.background_ns = self._pages.background_ns, 0
        return spent

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Tree mechanics
    # ------------------------------------------------------------------

    def _descend(self, key: bytes) -> Tuple[LeafNode, int]:
        page_id = self._root_id
        node = self._pages.get(page_id)
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            page_id = node.children[index]
            node = self._pages.get(page_id)
        return node, page_id

    def _insert(
        self, page_id: int, key: bytes, value: bytes, height: int
    ) -> Optional[_SplitResult]:
        node = self._pages.get(page_id)
        if node.is_leaf:
            return self._insert_leaf(node, page_id, key, value)
        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value, height - 1)
        if split is None:
            return None
        # The child handed us a new right sibling; register it here.
        node = self._pages.get(page_id)
        index = bisect.bisect_right(node.keys, split.separator)
        node.keys.insert(index, split.separator)
        node.children.insert(index + 1, split.right_page)
        self._pages.update(page_id, node)
        if len(node.keys) > self.config.order:
            return self._split_internal(node, page_id)
        return None

    def _insert_leaf(
        self, leaf: LeafNode, page_id: int, key: bytes, value: bytes
    ) -> Optional[_SplitResult]:
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index] = value  # in-place overwrite
        else:
            leaf.keys.insert(index, key)
            leaf.values.insert(index, value)
            self._count += 1
        self._pages.update(page_id, leaf)
        if len(leaf.keys) > self.config.order:
            return self._split_leaf(leaf, page_id)
        return None

    def _split_leaf(self, leaf: LeafNode, page_id: int) -> _SplitResult:
        mid = len(leaf.keys) // 2
        right = LeafNode(leaf.keys[mid:], leaf.values[mid:], leaf.next_leaf)
        right_page = self._pages.allocate(right)
        del leaf.keys[mid:]
        del leaf.values[mid:]
        leaf.next_leaf = right_page
        self._pages.update(page_id, leaf)
        return _SplitResult(right.keys[0], right_page)

    def _split_internal(self, node: InternalNode, page_id: int) -> _SplitResult:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = InternalNode(node.keys[mid + 1 :], node.children[mid + 1 :])
        right_page = self._pages.allocate(right)
        del node.keys[mid:]
        del node.children[mid + 1 :]
        self._pages.update(page_id, node)
        return _SplitResult(separator, right_page)

    # ------------------------------------------------------------------
    # Deletion with rebalancing
    # ------------------------------------------------------------------

    @property
    def _min_keys(self) -> int:
        return self.config.order // 2

    def _delete_rebalancing(self, page_id: int, key: bytes) -> None:
        node = self._pages.get(page_id)
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                del node.keys[index]
                del node.values[index]
                self._pages.update(page_id, node)
                self._count -= 1
            return
        child_pos = bisect.bisect_right(node.keys, key)
        child_id = node.children[child_pos]
        self._delete_rebalancing(child_id, key)
        child = self._pages.get(child_id)
        if len(child.keys) >= self._min_keys:
            return
        # Re-fetch the parent: the recursive call may have evicted it.
        node = self._pages.get(page_id)
        self._rebalance_child(node, page_id, child_pos)

    def _rebalance_child(self, parent: InternalNode, parent_id: int, pos: int) -> None:
        child_id = parent.children[pos]
        child = self._pages.get(child_id)
        if pos > 0:
            left_id = parent.children[pos - 1]
            left = self._pages.get(left_id)
            if len(left.keys) > self._min_keys:
                self._borrow_from_left(parent, parent_id, pos, left, left_id,
                                       child, child_id)
                return
        if pos < len(parent.children) - 1:
            right_id = parent.children[pos + 1]
            right = self._pages.get(right_id)
            if len(right.keys) > self._min_keys:
                self._borrow_from_right(parent, parent_id, pos, child, child_id,
                                        right, right_id)
                return
        # No sibling can lend: merge with a neighbour.
        if pos > 0:
            self._merge_children(parent, parent_id, pos - 1)
        else:
            self._merge_children(parent, parent_id, pos)

    def _borrow_from_left(self, parent, parent_id, pos, left, left_id,
                          child, child_id) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[pos - 1] = child.keys[0]
        else:
            # Rotate through the parent separator.
            child.keys.insert(0, parent.keys[pos - 1])
            parent.keys[pos - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        self._pages.update(left_id, left)
        self._pages.update(child_id, child)
        self._pages.update(parent_id, parent)

    def _borrow_from_right(self, parent, parent_id, pos, child, child_id,
                           right, right_id) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[pos] = right.keys[0]
        else:
            child.keys.append(parent.keys[pos])
            parent.keys[pos] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        self._pages.update(right_id, right)
        self._pages.update(child_id, child)
        self._pages.update(parent_id, parent)

    def _merge_children(self, parent: InternalNode, parent_id: int, left_pos: int) -> None:
        """Merge ``children[left_pos + 1]`` into ``children[left_pos]``."""
        left_id = parent.children[left_pos]
        right_id = parent.children[left_pos + 1]
        left = self._pages.get(left_id)
        right = self._pages.get(right_id)
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_pos])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[left_pos]
        del parent.children[left_pos + 1]
        self._pages.update(left_id, left)
        self._pages.update(parent_id, parent)
        self._pages.free(right_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        return self._height

    def cache_stats(self) -> dict:
        return {
            "hits": self._pages.hits,
            "misses": self._pages.misses,
            "page_ins": self._pages.page_ins,
            "page_outs": self._pages.page_outs,
            "resident_pages": self._pages.resident_pages,
        }
