"""Hash index mapping keys to hybrid-log addresses.

FASTER's index is a cache-aligned hash table of bucket entries pointing
into the log.  In Python the faithful part is the *behaviour* -- O(1)
probes to a log address, with explicit counters for probes and resident
entries -- rather than the memory layout, so a dict carries the mapping.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional


class HashIndex:
    def __init__(self) -> None:
        self._slots: Dict[bytes, int] = {}
        self.probes = 0
        self.updates = 0

    def lookup(self, key: bytes) -> Optional[int]:
        """Return the log address of the newest record for ``key``."""
        self.probes += 1
        return self._slots.get(key)

    def update(self, key: bytes, address: int) -> None:
        self.updates += 1
        self._slots[key] = address

    def remove(self, key: bytes) -> None:
        self.updates += 1
        self._slots.pop(key, None)

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, key: bytes) -> bool:
        return key in self._slots

    def keys(self) -> Iterator[bytes]:
        return iter(self._slots)
