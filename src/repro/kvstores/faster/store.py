"""FASTER-like store: hash index + hybrid log (Chandramouli et al.,
SIGMOD '18).

Design traits the paper's evaluation rests on:

* O(1) point lookups through the hash index
* **in-place updates** for records in the log's mutable region -- this
  is why FASTER dominates incremental streaming operators (Figure 13)
* no lazy merge: read-modify-write (``rmw``) materializes the merged
  value immediately, so holistic windows pay a copy of an ever-growing
  bucket on every event -- the mechanism behind FASTER losing the
  holistic workloads
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..api import (
    OP_DELETE,
    OP_MERGE,
    OP_PUT,
    AppendMergeOperator,
    KVStore,
    MergeOperator,
)
from ..integrity import ScrubReport, resolve_checksum_kind
from ..storage import Storage
from .hashindex import HashIndex
from .hybridlog import HybridLog, LogRecord


@dataclass
class FasterConfig:
    """The paper gives FASTER a 256 MB log; same at 1/1000 scale."""

    memory_budget: int = 256 * 1024
    mutable_fraction: float = 0.9
    segment_size: int = 16 * 1024
    #: checksum algorithm for sealed segments: "none", "crc32",
    #: "crc32c", or None/"default" for the platform default
    checksum: Optional[str] = None


class FasterStore(KVStore):
    name = "faster"

    def __init__(
        self,
        config: Optional[FasterConfig] = None,
        merge_operator: Optional[MergeOperator] = None,
        storage: Optional[Storage] = None,
    ) -> None:
        super().__init__()
        self.config = config or FasterConfig()
        self.merge_operator = merge_operator or AppendMergeOperator()
        self.index = HashIndex()
        self.checksum_kind = resolve_checksum_kind(self.config.checksum)
        self.log = HybridLog(
            memory_budget=self.config.memory_budget,
            mutable_fraction=self.config.mutable_fraction,
            segment_size=self.config.segment_size,
            storage=storage,
            checksum_kind=self.checksum_kind,
        )

    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """FASTER ``read``: index probe, then one log access."""
        self._check_open()
        self.stats.gets += 1
        address = self.index.lookup(key)
        if address is None:
            return None
        record = self.log.read(address)
        if record.tombstone:
            return None
        self.stats.bytes_read += record.size
        return record.value

    def put(self, key: bytes, value: bytes) -> None:
        """FASTER ``upsert``: in-place when mutable, else append (RCU)."""
        self._check_open()
        self.stats.puts += 1
        address = self.index.lookup(key)
        if address is not None and self.log.can_update_in_place(address, len(value)):
            record = self.log.read(address)
            if not record.tombstone:
                self.log.update_in_place(address, value)
                self.stats.bytes_written += len(value)
                return
        new_address = self.log.append(LogRecord(key, value))
        self.index.update(key, new_address)
        self.stats.bytes_written += len(key) + len(value)

    def delete(self, key: bytes) -> None:
        """Append a tombstone and point the index at it."""
        self._check_open()
        self.stats.deletes += 1
        if key not in self.index:
            return
        address = self.log.append(LogRecord(key, b"", tombstone=True))
        self.index.update(key, address)
        self.stats.bytes_written += len(key)

    def merge(self, key: bytes, operand: bytes) -> None:
        """FASTER ``rmw``: materialize the merge eagerly.

        Unlike the LSM's lazy operand append, the merged value is built
        now -- an O(current value size) copy when the bucket has grown
        past in-place headroom.
        """
        self._check_open()
        self.stats.merges += 1
        address = self.index.lookup(key)
        existing: Optional[bytes] = None
        if address is not None:
            record = self.log.read(address)
            if not record.tombstone:
                existing = record.value
                self.stats.bytes_read += record.size
        merged = self.merge_operator.full_merge(existing, (operand,))
        if (
            address is not None
            and existing is not None
            and self.log.can_update_in_place(address, len(merged))
        ):
            self.log.update_in_place(address, merged)
        else:
            # The merged value outgrew its record (or lives in the
            # read-only/disk region): read-copy-update appends a fresh,
            # larger record -- the log churn that makes rmw expensive
            # for growing window buckets.
            new_address = self.log.append(LogRecord(key, merged))
            self.index.update(key, new_address)
        self.stats.bytes_written += len(merged)

    # ------------------------------------------------------------------
    # Batched operations
    # ------------------------------------------------------------------

    def multi_get(self, keys) -> List[Optional[bytes]]:
        """Vectored read: one hoisted index-probe/log-read loop."""
        self._check_open()
        self.stats.gets += len(keys)
        lookup = self.index.lookup
        read = self.log.read
        out: List[Optional[bytes]] = []
        push = out.append
        bytes_read = 0
        for key in keys:
            address = lookup(key)
            if address is None:
                push(None)
                continue
            record = read(address)
            if record.tombstone:
                push(None)
            else:
                bytes_read += record.size
                push(record.value)
        self.stats.bytes_read += bytes_read
        return out

    def apply_batch(self, ops) -> None:
        """Apply a write batch as ONE contiguous hybrid-log region.

        New record versions are collected and appended together via
        :meth:`HybridLog.append_many`; the hash index is repointed once
        per key afterwards.  Ops later in the batch see earlier members
        through a pending map, so same-key sequences keep per-op
        semantics (a pending tail record is trivially mutable -- exactly
        what the per-op path would find at the log tail).
        """
        self._check_open()
        stats = self.stats
        index = self.index
        log = self.log
        full_merge = self.merge_operator.full_merge
        batch: List[LogRecord] = []
        #: key -> position in ``batch`` of its newest pending record
        pending: Dict[bytes, int] = {}
        for opcode, key, value in ops:
            if opcode == OP_PUT:
                stats.puts += 1
                pos = pending.get(key)
                if pos is not None:
                    record = batch[pos]
                    if not record.tombstone and len(value) <= record.alloc:
                        record.value = value
                        log.in_place_updates += 1
                        stats.bytes_written += len(value)
                        continue
                else:
                    address = index.lookup(key)
                    if address is not None and log.can_update_in_place(
                        address, len(value)
                    ):
                        record = log.read(address)
                        if not record.tombstone:
                            log.update_in_place(address, value)
                            stats.bytes_written += len(value)
                            continue
                pending[key] = len(batch)
                batch.append(LogRecord(key, value))
                stats.bytes_written += len(key) + len(value)
            elif opcode == OP_MERGE:
                stats.merges += 1
                pos = pending.get(key)
                existing: Optional[bytes] = None
                if pos is not None:
                    record = batch[pos]
                    if not record.tombstone:
                        existing = record.value
                        stats.bytes_read += record.size
                    merged = full_merge(existing, (value,))
                    if existing is not None and len(merged) <= record.alloc:
                        record.value = merged
                        log.in_place_updates += 1
                    else:
                        pending[key] = len(batch)
                        batch.append(LogRecord(key, merged))
                    stats.bytes_written += len(merged)
                else:
                    address = index.lookup(key)
                    if address is not None:
                        record = log.read(address)
                        if not record.tombstone:
                            existing = record.value
                            stats.bytes_read += record.size
                    merged = full_merge(existing, (value,))
                    if (
                        address is not None
                        and existing is not None
                        and log.can_update_in_place(address, len(merged))
                    ):
                        log.update_in_place(address, merged)
                    else:
                        pending[key] = len(batch)
                        batch.append(LogRecord(key, merged))
                    stats.bytes_written += len(merged)
            elif opcode == OP_DELETE:
                stats.deletes += 1
                if key not in pending and key not in index:
                    continue
                pending[key] = len(batch)
                batch.append(LogRecord(key, b"", tombstone=True))
                stats.bytes_written += len(key)
            else:
                raise ValueError(
                    f"apply_batch is write-only; cannot apply opcode {opcode}"
                )
        if batch:
            addresses = log.append_many(batch)
            update = index.update
            for key, pos in pending.items():
                update(key, addresses[pos])

    def flush(self) -> None:
        self.log.flush()

    def storage_backend(self) -> Storage:
        return self.log.storage

    def scrub(self) -> ScrubReport:
        """Verify every sealed hybrid-log segment."""
        report = self.log.scrub()
        self.integrity.absorb(report)
        return report

    def take_background_ns(self) -> int:
        spent, self.log.background_ns = self.log.background_ns, 0
        return spent

    def compact_log(self, max_segments: int = 1) -> dict:
        """FASTER-style log compaction over the oldest sealed segments.

        Records the hash index still points at are copied to the log
        tail (and re-indexed); dead versions and tombstones whose key
        has since been rewritten are dropped with their segment.
        Returns counters describing the work done.
        """
        self._check_open()
        live_copied = 0
        dead_dropped = 0
        bytes_reclaimed = 0
        for blob in self.log.sealed_segments()[:max_segments]:
            for address, record in self.log.segment_records(blob):
                if self.index.lookup(record.key) != address:
                    dead_dropped += 1  # superseded version
                elif record.tombstone:
                    # Newest version is a delete: retire the key fully.
                    self.index.remove(record.key)
                    dead_dropped += 1
                else:
                    new_address = self.log.append(
                        LogRecord(record.key, record.value)
                    )
                    self.index.update(record.key, new_address)
                    live_copied += 1
            bytes_reclaimed += self.log.drop_segment(blob)
        return {
            "live_copied": live_copied,
            "dead_dropped": dead_dropped,
            "bytes_reclaimed": bytes_reclaimed,
        }

    def __len__(self) -> int:
        return len(self.index)

    # -- introspection ----------------------------------------------------

    def fill_stats(self) -> dict:
        return {
            "index_entries": len(self.index),
            "log_tail": self.log.tail,
            "log_head": self.log.head,
            "log_memory_bytes": self.log.memory_bytes,
            "disk_reads": self.log.disk_reads,
            "in_place_updates": self.log.in_place_updates,
            "appends": self.log.appends,
        }
