"""FASTER's hybrid log: one address space spanning disk and memory.

Addresses grow monotonically from 0.  The region layout is::

      0 ............ head ............ ro_boundary ............ tail
      [   stable / on disk   ][   read-only in memory  ][ mutable ]

* records in the **mutable** region may be updated in place
* records in the **read-only** region are immutable; updating them
  appends a new version (read-copy-update)
* records below ``head`` live in sealed segments written to storage and
  must be deserialized on access

The memory budget covers ``[head, tail)``; when it overflows, the oldest
in-memory records are sealed into a storage segment and ``head``
advances.  The mutable region is a configurable fraction of the budget
(FASTER defaults to 90%).
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...obs import tracing
from ..integrity import (
    ChecksumKind,
    CorruptionError,
    ScrubFinding,
    ScrubReport,
    checksum,
    timed_scrub,
)
from ..storage import MemoryStorage, Storage, StorageError

_RECORD_HEADER = struct.Struct("<BII")  # tombstone flag, key len, value len
RECORD_OVERHEAD = 16  # models FASTER's RecordInfo header + alignment

# Sealed segments come in two framings.  Legacy (v1) segments are
# back-to-back raw records, whose first byte is a tombstone flag (0 or
# 1) and so never collides with the v2 magic.  v2 segments start with
# an 8-byte header (magic, version, checksum kind, pad) followed by
# framed records: ``crc:4 | len:4 | record``.
SEGMENT_MAGIC = b"FSG2"
SEGMENT_VERSION = 2
_SEGMENT_HEADER = struct.Struct("<4sBBH")
SEGMENT_HEADER_SIZE = _SEGMENT_HEADER.size
_FRAME = struct.Struct("<II")  # crc32 of payload, payload length


@dataclass
class LogRecord:
    key: bytes
    value: bytes
    tombstone: bool = False
    #: allocated value capacity -- fixed at append time.  In-place
    #: updates must fit inside it; growing a value forces a
    #: read-copy-update append, exactly like real FASTER.
    alloc: int = -1

    def __post_init__(self) -> None:
        if self.alloc < 0:
            self.alloc = len(self.value)

    @property
    def size(self) -> int:
        return RECORD_OVERHEAD + len(self.key) + self.alloc

    def encode(self) -> bytes:
        return (
            _RECORD_HEADER.pack(int(self.tombstone), len(self.key), len(self.value))
            + self.key
            + self.value
        )

    @classmethod
    def decode(cls, buf: bytes, offset: int = 0) -> Tuple["LogRecord", int]:
        tombstone, klen, vlen = _RECORD_HEADER.unpack_from(buf, offset)
        start = offset + _RECORD_HEADER.size
        key = bytes(buf[start : start + klen])
        value = bytes(buf[start + klen : start + klen + vlen])
        return cls(key, value, bool(tombstone)), start + klen + vlen


def segment_header(kind: ChecksumKind) -> bytes:
    """The 8-byte header starting every v2 sealed segment."""
    return _SEGMENT_HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, int(kind), 0)


def frame_log_record(record: LogRecord, kind: ChecksumKind) -> bytes:
    """Frame one record for a v2 segment."""
    payload = record.encode()
    return _FRAME.pack(checksum(payload, kind), len(payload)) + payload


def segment_checksum_kind(raw: bytes, blob: str = "?") -> Optional[ChecksumKind]:
    """The checksum kind recorded in a segment header, or ``None`` for
    a legacy (v1) segment.  Raises :class:`CorruptionError` when the
    header is damaged."""
    if raw[:4] != SEGMENT_MAGIC:
        return None
    if len(raw) < SEGMENT_HEADER_SIZE:
        raise CorruptionError(blob, 0, f"torn segment header ({len(raw)} bytes)")
    _, version, kind_value, _ = _SEGMENT_HEADER.unpack_from(raw, 0)
    if version != SEGMENT_VERSION:
        raise CorruptionError(blob, 4, f"unknown segment version {version}")
    try:
        return ChecksumKind(kind_value)
    except ValueError:
        raise CorruptionError(blob, 5, f"unknown checksum kind {kind_value}") from None


def decode_segment_record(
    raw: bytes, offset: int, kind: Optional[ChecksumKind], blob: str = "?"
) -> Tuple[LogRecord, int]:
    """Decode one record at ``offset`` within a sealed segment.

    ``kind`` is ``None`` for legacy segments (structural validation
    only) and a :class:`ChecksumKind` for framed v2 segments (CRC
    verified before deserializing).  Raises :class:`CorruptionError`
    on damage; never returns garbage bytes.
    """
    end = len(raw)
    if kind is None:
        if offset + _RECORD_HEADER.size > end:
            raise CorruptionError(blob, offset, "torn record header")
        tombstone, klen, vlen = _RECORD_HEADER.unpack_from(raw, offset)
        if tombstone not in (0, 1) or offset + _RECORD_HEADER.size + klen + vlen > end:
            raise CorruptionError(blob, offset, "torn or invalid record")
        return LogRecord.decode(raw, offset)
    if offset + _FRAME.size > end:
        raise CorruptionError(blob, offset, "torn frame header")
    crc, length = _FRAME.unpack_from(raw, offset)
    start = offset + _FRAME.size
    if start + length > end:
        raise CorruptionError(blob, offset, "torn record frame")
    payload = bytes(raw[start : start + length])
    if checksum(payload, kind) != crc:
        raise CorruptionError(blob, offset, "record checksum mismatch")
    try:
        record, consumed = LogRecord.decode(payload, 0)
        if consumed != length:
            raise ValueError("trailing bytes inside frame")
    except (struct.error, ValueError) as exc:
        raise CorruptionError(blob, offset, f"undecodable record: {exc}") from None
    return record, start + length


class HybridLog:
    def __init__(
        self,
        memory_budget: int = 1024 * 1024,
        mutable_fraction: float = 0.9,
        segment_size: int = 64 * 1024,
        storage: Optional[Storage] = None,
        checksum_kind: ChecksumKind = ChecksumKind.NONE,
    ) -> None:
        if not 0.0 < mutable_fraction <= 1.0:
            raise ValueError("mutable_fraction must be in (0, 1]")
        self.memory_budget = memory_budget
        self.mutable_fraction = mutable_fraction
        self.segment_size = segment_size
        self.checksum_kind = checksum_kind
        self.storage = storage if storage is not None else MemoryStorage()
        self._memory: Dict[int, LogRecord] = {}
        self._memory_order: List[int] = []  # addresses in append order
        self._memory_bytes = 0
        self._evict_cursor = 0  # index into _memory_order of next eviction
        self.head = 0
        self.tail = 0
        # addr -> (segment blob name, byte offset) for sealed records
        self._disk_index: Dict[int, Tuple[str, int]] = {}
        #: sealed segment blob names, oldest first
        self._segments: List[str] = []
        self._segment_count = 0
        self._pending_segment: List[Tuple[int, LogRecord]] = []
        self._pending_map: Dict[int, LogRecord] = {}
        self._pending_bytes = 0
        self.disk_reads = 0
        self.appends = 0
        self.in_place_updates = 0
        self.background_ns = 0

    # ------------------------------------------------------------------
    # Region boundaries
    # ------------------------------------------------------------------

    @property
    def read_only_boundary(self) -> int:
        """Lowest address that may be updated in place."""
        mutable_budget = int(self.memory_budget * self.mutable_fraction)
        return max(self.head, self.tail - mutable_budget)

    def is_mutable(self, address: int) -> bool:
        return address >= self.read_only_boundary

    def is_in_memory(self, address: int) -> bool:
        return address in self._memory

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def append(self, record: LogRecord) -> int:
        address = self.tail
        self.tail += record.size
        self._memory[address] = record
        self._memory_order.append(address)
        self._memory_bytes += record.size
        self.appends += 1
        self._maybe_evict()
        return address

    def append_many(self, records: Sequence[LogRecord]) -> List[int]:
        """Append a write batch as one contiguous log region.

        The per-record bookkeeping runs in one tight loop and eviction
        is checked once at the end, so the batch occupies adjacent
        addresses and pays the region-boundary accounting once instead
        of per record.  Returns the address of every record, in order.
        """
        addresses: List[int] = []
        push = addresses.append
        tail = self.tail
        memory = self._memory
        order = self._memory_order.append
        added = 0
        for record in records:
            push(tail)
            memory[tail] = record
            order(tail)
            size = record.size
            added += size
            tail += size
        self.tail = tail
        self._memory_bytes += added
        self.appends += len(records)
        self._maybe_evict()
        return addresses

    def read(self, address: int) -> LogRecord:
        record = self._memory.get(address)
        if record is not None:
            return record
        record = self._pending_map.get(address)
        if record is not None:
            return record
        location = self._disk_index.get(address)
        if location is None:
            raise KeyError(f"address {address} not found in log")
        blob, offset = location
        self.disk_reads += 1
        raw = self.storage.read(blob)
        kind = segment_checksum_kind(raw, blob)
        record, _ = decode_segment_record(raw, offset, kind, blob)
        return record

    def update_in_place(self, address: int, value: bytes) -> None:
        """Replace the value of a mutable-region record, within its
        original allocation."""
        if not self.is_mutable(address):
            raise ValueError(f"address {address} is not in the mutable region")
        record = self._memory[address]
        if len(value) > record.alloc:
            raise ValueError(
                f"value of {len(value)} bytes exceeds the record's "
                f"{record.alloc}-byte allocation"
            )
        record.value = value
        self.in_place_updates += 1

    def can_update_in_place(self, address: int, new_size: int) -> bool:
        if not self.is_mutable(address):
            return False
        record = self._memory.get(address)
        return record is not None and new_size <= record.alloc

    # ------------------------------------------------------------------
    # Eviction (head advancement)
    # ------------------------------------------------------------------

    def _maybe_evict(self) -> None:
        while (
            self._memory_bytes > self.memory_budget
            and self._evict_cursor < len(self._memory_order)
        ):
            address = self._memory_order[self._evict_cursor]
            self._evict_cursor += 1
            record = self._memory.pop(address, None)
            if record is None:
                continue
            self._memory_bytes -= record.size
            self._pending_segment.append((address, record))
            self._pending_map[address] = record
            self._pending_bytes += record.size
            self.head = address + record.size
            if self._pending_bytes >= self.segment_size:
                self._seal_segment()
        if self._evict_cursor > 4096 and self._evict_cursor * 2 > len(
            self._memory_order
        ):
            # Drop the consumed prefix so the order list does not grow forever.
            self._memory_order = self._memory_order[self._evict_cursor :]
            self._evict_cursor = 0

    def _seal_segment(self) -> None:
        # Segment sealing is background I/O in real FASTER; timed so
        # the evaluator can exclude it from client-visible latency.
        if not self._pending_segment:
            return
        begin = time.perf_counter_ns()
        with tracing.span(
            "faster.segment_roll",
            records=len(self._pending_segment),
            bytes=self._pending_bytes,
        ):
            blob = f"faster-seg-{self._segment_count:08d}"
            self._segment_count += 1
            checksummed = self.checksum_kind is not ChecksumKind.NONE
            parts: List[bytes] = []
            offset = 0
            if checksummed:
                header = segment_header(self.checksum_kind)
                parts.append(header)
                offset = len(header)
            for address, record in self._pending_segment:
                encoded = (
                    frame_log_record(record, self.checksum_kind)
                    if checksummed
                    else record.encode()
                )
                self._disk_index[address] = (blob, offset)
                parts.append(encoded)
                offset += len(encoded)
            self.storage.write(blob, b"".join(parts))
            self._segments.append(blob)
            self._pending_segment = []
            self._pending_map.clear()
            self._pending_bytes = 0
        self.background_ns += time.perf_counter_ns() - begin

    def flush(self) -> None:
        self._seal_segment()

    # ------------------------------------------------------------------
    # Log compaction (garbage collection of sealed segments)
    # ------------------------------------------------------------------

    def sealed_segments(self) -> List[str]:
        """Sealed segment blobs, oldest first."""
        return list(self._segments)

    def segment_records(self, blob: str) -> List[Tuple[int, "LogRecord"]]:
        """Decode every (address, record) stored in a sealed segment."""
        raw = self.storage.read(blob)
        kind = segment_checksum_kind(raw, blob)
        entries = sorted(
            (offset, address)
            for address, (name, offset) in self._disk_index.items()
            if name == blob
        )
        out: List[Tuple[int, LogRecord]] = []
        for offset, address in entries:
            record, _ = decode_segment_record(raw, offset, kind, blob)
            out.append((address, record))
        return out

    def scrub(self) -> ScrubReport:
        """Verify every sealed segment record-by-record.

        Sealed segments have no redundant copy (the in-memory region
        has already advanced past them), so damage is detected but
        unrecoverable.
        """
        report = ScrubReport()
        with timed_scrub(report):
            for blob in list(self._segments):
                report.structures_checked += 1
                try:
                    raw = self.storage.read(blob)
                except StorageError as exc:
                    report.add(ScrubFinding(blob, 0, f"unreadable segment: {exc}"))
                    continue
                try:
                    kind = segment_checksum_kind(raw, blob)
                    if kind is None:
                        # Legacy segment: validate each indexed record.
                        for offset, _ in sorted(
                            (off, addr)
                            for addr, (name, off) in self._disk_index.items()
                            if name == blob
                        ):
                            decode_segment_record(raw, offset, None, blob)
                    else:
                        # Framed segment: walk every frame sequentially.
                        offset = SEGMENT_HEADER_SIZE
                        while offset < len(raw):
                            _, offset = decode_segment_record(raw, offset, kind, blob)
                except CorruptionError as exc:
                    report.add(ScrubFinding(blob, exc.offset, exc.detail))
        return report

    def drop_segment(self, blob: str) -> int:
        """Delete a sealed segment; returns the bytes reclaimed."""
        reclaimed = self.storage.size(blob) if self.storage.exists(blob) else 0
        self.storage.delete(blob)
        for address in [
            a for a, (name, _) in self._disk_index.items() if name == blob
        ]:
            del self._disk_index[address]
        self._segments = [s for s in self._segments if s != blob]
        return reclaimed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        return self._memory_bytes

    @property
    def disk_records(self) -> int:
        return len(self._disk_index) + len(self._pending_segment)
