"""FASTER-like store: hash index over a hybrid log."""

from .hashindex import HashIndex
from .hybridlog import HybridLog, LogRecord
from .store import FasterConfig, FasterStore

__all__ = ["FasterConfig", "FasterStore", "HashIndex", "HybridLog", "LogRecord"]
