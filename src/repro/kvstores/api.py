"""Common key-value store interface shared by every store in the suite.

The paper's performance evaluator speaks four operations -- ``get``,
``put``, ``merge``, and ``delete`` -- matching the RocksDB API.  Every
store in :mod:`repro.kvstores` implements this interface directly; the
translation of ``merge`` for stores that lack lazy updates (BerkeleyDB,
FASTER) lives in :mod:`repro.kvstores.connectors`.

Keys and values are ``bytes``.  Stores are single-writer, matching the
dataflow model's single-thread access isolation (paper section 2.3).
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

#: batch opcodes, numerically identical to the trace's column encoding
#: (:data:`repro.trace.OPS_BY_CODE`): get=0, put=1, merge=2, delete=3
OP_GET, OP_PUT, OP_MERGE, OP_DELETE = 0, 1, 2, 3

#: one entry of a write batch: ``(opcode, key, value)``; the value is
#: ignored for deletes
BatchOp = Tuple[int, bytes, bytes]


class KVStoreError(Exception):
    """Base class for store errors."""


class UnsupportedOperationError(KVStoreError):
    """Raised when a store does not natively support an operation."""


class StoreClosedError(KVStoreError):
    """Raised when an operation is attempted on a closed store."""


class MergeOperator(abc.ABC):
    """RocksDB-style merge operator.

    A merge operand is a partial update applied lazily: the store may
    buffer operands and combine them with the base value only when the
    key is read or compacted.
    """

    @abc.abstractmethod
    def full_merge(self, existing: Optional[bytes], operands: Tuple[bytes, ...]) -> bytes:
        """Combine an existing value (possibly ``None``) with operands."""

    def partial_merge(self, left: bytes, right: bytes) -> Optional[bytes]:
        """Combine two adjacent operands, or ``None`` if not combinable."""
        return None


class AppendMergeOperator(MergeOperator):
    """Concatenates operands onto the existing value.

    This is the natural operator for streaming window buckets: each
    operand is an encoded event appended to the window's contents.
    """

    def full_merge(self, existing: Optional[bytes], operands: Tuple[bytes, ...]) -> bytes:
        parts = [existing] if existing is not None else []
        parts.extend(operands)
        return b"".join(parts)

    def partial_merge(self, left: bytes, right: bytes) -> bytes:
        return left + right


class CounterMergeOperator(MergeOperator):
    """Treats values/operands as signed 64-bit little-endian counters."""

    _WIDTH = 8

    def full_merge(self, existing: Optional[bytes], operands: Tuple[bytes, ...]) -> bytes:
        total = int.from_bytes(existing, "little", signed=True) if existing else 0
        for op in operands:
            total += int.from_bytes(op, "little", signed=True)
        return total.to_bytes(self._WIDTH, "little", signed=True)

    def partial_merge(self, left: bytes, right: bytes) -> bytes:
        combined = int.from_bytes(left, "little", signed=True) + int.from_bytes(
            right, "little", signed=True
        )
        return combined.to_bytes(self._WIDTH, "little", signed=True)


@dataclass
class StoreStats:
    """Operation and internal-activity counters exposed by every store."""

    gets: int = 0
    puts: int = 0
    merges: int = 0
    deletes: int = 0
    # Internal activity (populated by stores that model it).
    flushes: int = 0
    compactions: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total_ops(self) -> int:
        return self.gets + self.puts + self.merges + self.deletes

    def snapshot(self) -> "StoreStats":
        """Field-complete copy.

        Built from the declared dataclass fields so newly added
        counters are never silently dropped; mutable containers are
        shallow-copied to decouple the snapshot from live updates.
        """
        values = {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }
        values["extra"] = dict(values["extra"])
        return StoreStats(**values)


class KVStore(abc.ABC):
    """Abstract embedded key-value store."""

    #: Human-readable store family name ("rocksdb", "faster", ...).
    name: str = "abstract"

    def __init__(self) -> None:
        self.stats = StoreStats()
        self._closed = False
        # Deferred import: repro.kvstores.integrity subclasses
        # KVStoreError from this module.
        from .integrity import IntegrityCounters

        #: corruption detections/repairs accumulated while running
        self.integrity = IntegrityCounters()

    # -- core operations -------------------------------------------------

    @abc.abstractmethod
    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value for ``key`` or ``None`` if absent."""

    @abc.abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""

    @abc.abstractmethod
    def delete(self, key: bytes) -> None:
        """Remove ``key``; removing an absent key is a no-op."""

    def merge(self, key: bytes, operand: bytes) -> None:
        """Lazily apply ``operand`` to ``key``.

        Stores without native merge raise
        :class:`UnsupportedOperationError`; callers should then go
        through a :class:`~repro.kvstores.connectors.StoreConnector`.
        """
        raise UnsupportedOperationError(f"{self.name} has no native merge")

    # -- batched operations ------------------------------------------------

    def multi_get(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        """Vectored ``get``: one result per key, in input order.

        The base implementation is a correct per-key loop; stores
        override it to amortize shared work across the batch (the LSM
        sorts keys so bloom/block-cache probes are shared per SSTable,
        the B-tree reuses leaf descents, the remote client packs the
        whole batch into one round-trip).
        """
        get = self.get
        return [get(key) for key in keys]

    def apply_batch(self, ops: Sequence[BatchOp]) -> None:
        """Apply a write batch of ``(opcode, key, value)`` entries.

        Opcodes are :data:`OP_PUT`, :data:`OP_MERGE`, and
        :data:`OP_DELETE` (the trace's numeric encoding); entries are
        applied in order, so same-key sequences keep their semantics.
        The base implementation dispatches per entry; stores override
        it to pay fixed per-operation costs once per batch (the LSM
        appends one group-commit WAL frame, FASTER appends one
        contiguous log region).  Reads are not allowed in a write
        batch -- use :meth:`multi_get`.
        """
        for opcode, key, value in ops:
            if opcode == OP_PUT:
                self.put(key, value)
            elif opcode == OP_MERGE:
                self.merge(key, value)
            elif opcode == OP_DELETE:
                self.delete(key)
            elif opcode == OP_GET:
                raise ValueError(
                    "apply_batch is write-only; use multi_get for reads"
                )
            else:
                raise ValueError(f"unknown batch opcode {opcode}")

    # -- background-work accounting ----------------------------------------

    def take_background_ns(self) -> int:
        """Return and reset time spent on *background* maintenance work
        during recent operations (flushes, compactions).

        Real stores run this work on background threads, so it does not
        appear in client-observed operation latency.  Our single-thread
        implementations perform it inline; the performance evaluator
        subtracts it from per-op latencies to model the threaded
        behaviour (throughput still pays the full cost).  Stores that
        *do* run maintenance on worker threads (the LSM's background
        mode) report only the time writers spent blocked on the
        write-stall gate -- the client-visible share -- and must make
        this method thread-safe.
        """
        return 0

    # -- optional operations ---------------------------------------------

    def scan(self, start: bytes, end: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` pairs with ``start <= key < end``."""
        raise UnsupportedOperationError(f"{self.name} has no scan support")

    def flush(self) -> None:
        """Persist buffered writes (no-op for purely in-memory stores)."""

    def storage_backend(self):
        """The :class:`~repro.kvstores.storage.Storage` holding this
        store's persistent artifacts, or ``None`` for purely in-memory
        stores.  The disk-fault injector and scrub tooling reach the
        on-disk state through this accessor."""
        return None

    def scrub(self):
        """Walk every on-disk structure, verify checksums, and return a
        :class:`~repro.kvstores.integrity.ScrubReport`.

        Stores without persistent structures report a clean, empty
        walk.  Persistent stores verify all blocks/pages/segments,
        repair what redundant state allows (e.g. rewrite a corrupt page
        from its resident copy, truncate a torn WAL tail), and count
        the rest as unrecoverable.
        """
        from .integrity import ScrubReport

        return ScrubReport()

    def close(self) -> None:
        """Flush and release resources; further operations fail."""
        if not self._closed:
            self.flush()
            self._closed = True

    def abandon(self) -> None:
        """Drop the store as a process kill would: nothing is flushed,
        buffered state is lost, and stores with background workers stop
        them at their next checkpoint.  Crash-recovery evaluation uses
        this on the doomed store so the revived store reads storage in
        exactly the state a real crash would leave."""
        self._closed = True

    # -- helpers -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"{self.name} store is closed")

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:  # pragma: no cover - optional
        raise UnsupportedOperationError(f"{self.name} does not track length")
