"""Gadget reproduction: a benchmark harness for systematic and robust
evaluation of streaming state stores (EuroSys '22).

Subpackages:

* :mod:`repro.core` -- the Gadget harness (event generation, driver,
  state machines, workload generation, replay, evaluation)
* :mod:`repro.kvstores` -- four embedded stores built from scratch:
  RocksDB-like LSM, Lethe, FASTER-like, BerkeleyDB-like B+Tree
* :mod:`repro.streaming` -- a miniature instrumented stream processor
  (the Apache Flink stand-in used to collect "real" traces)
* :mod:`repro.datasets` -- synthetic Borg / Taxi / Azure streams
* :mod:`repro.ycsb` -- YCSB workload generator (the baseline)
* :mod:`repro.analysis` -- the characterization toolkit (locality,
  amplification, working sets, KS/Wasserstein)
"""

from .events import Event, Watermark, sort_by_time, with_watermarks
from .trace import (
    AccessTrace,
    OpType,
    StateAccess,
    concat_traces,
    interleave_traces,
    shuffled_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AccessTrace",
    "Event",
    "OpType",
    "StateAccess",
    "Watermark",
    "concat_traces",
    "interleave_traces",
    "shuffled_trace",
    "sort_by_time",
    "with_watermarks",
    "__version__",
]
