"""State-access trace model shared by the whole suite.

The paper represents a state access as a tuple ``a = (p, k, v, t)`` --
an operation ``p`` on key ``k`` with value ``v`` at time ``t`` (section
2.3).  Both the instrumented mini stream processor (the "real" traces of
section 3) and the Gadget workload generator (section 5) emit
:class:`StateAccess` records, so every analysis and replay tool operates
on a single format.

Traces store the value *size* rather than value bytes, mirroring
Gadget's design decision to never materialize operator state: values
are synthesized at replay time from the recorded size.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence


class OpType(str, Enum):
    """The four operations of the RocksDB-flavoured state API."""

    GET = "get"
    PUT = "put"
    MERGE = "merge"
    DELETE = "delete"


_OP_CODES = {OpType.GET: 0, OpType.PUT: 1, OpType.MERGE: 2, OpType.DELETE: 3}
_CODE_OPS = {code: op for op, code in _OP_CODES.items()}
_ENTRY = struct.Struct("<BIIq")  # op, key len, value size, timestamp


@dataclass(frozen=True)
class StateAccess:
    """One request sent to the state store."""

    op: OpType
    key: bytes
    value_size: int = 0
    timestamp: int = 0

    def encode(self) -> bytes:
        return (
            _ENTRY.pack(
                _OP_CODES[self.op], len(self.key), self.value_size, self.timestamp
            )
            + self.key
        )


class AccessTrace:
    """An ordered state access stream plus bookkeeping helpers."""

    def __init__(self, accesses: Optional[List[StateAccess]] = None) -> None:
        self.accesses: List[StateAccess] = accesses if accesses is not None else []

    # -- recording ---------------------------------------------------------

    def record(
        self, op: OpType, key: bytes, value_size: int = 0, timestamp: int = 0
    ) -> None:
        self.accesses.append(StateAccess(op, key, value_size, timestamp))

    def extend(self, other: "AccessTrace") -> None:
        self.accesses.extend(other.accesses)

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[StateAccess]:
        return iter(self.accesses)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return AccessTrace(self.accesses[index])
        return self.accesses[index]

    # -- summaries -----------------------------------------------------------

    def op_counts(self) -> Dict[OpType, int]:
        counts: Dict[OpType, int] = {op: 0 for op in OpType}
        for access in self.accesses:
            counts[access.op] += 1
        return counts

    def op_fractions(self) -> Dict[OpType, float]:
        counts = self.op_counts()
        total = len(self.accesses)
        if total == 0:
            return {op: 0.0 for op in OpType}
        return {op: count / total for op, count in counts.items()}

    def key_sequence(self) -> List[bytes]:
        return [access.key for access in self.accesses]

    def distinct_keys(self) -> int:
        return len({access.key for access in self.accesses})

    def filter(self, predicate: Callable[[StateAccess], bool]) -> "AccessTrace":
        return AccessTrace([a for a in self.accesses if predicate(a)])

    # -- persistence (the paper's "offline mode" trace files) ----------------

    MAGIC = b"GDGT"
    VERSION = 1

    def save(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.MAGIC)
            handle.write(struct.pack("<HQ", self.VERSION, len(self.accesses)))
            for access in self.accesses:
                handle.write(access.encode())

    @classmethod
    def load(cls, path: str) -> "AccessTrace":
        with open(path, "rb") as handle:
            data = handle.read()
        if data[:4] != cls.MAGIC:
            raise ValueError(f"{path} is not a Gadget trace file")
        version, count = struct.unpack_from("<HQ", data, 4)
        if version != cls.VERSION:
            raise ValueError(f"unsupported trace version: {version}")
        offset = 4 + struct.calcsize("<HQ")
        accesses: List[StateAccess] = []
        for _ in range(count):
            code, klen, vsize, timestamp = _ENTRY.unpack_from(data, offset)
            offset += _ENTRY.size
            key = bytes(data[offset : offset + klen])
            offset += klen
            accesses.append(StateAccess(_CODE_OPS[code], key, vsize, timestamp))
        return cls(accesses)


def shuffled_trace(trace: AccessTrace, rng) -> AccessTrace:
    """Random permutation of a trace (the paper's locality baseline).

    Preserves key popularity while destroying ordering, which is how
    Figures 5 and 7 contrast real locality against chance.
    """
    accesses = list(trace.accesses)
    rng.shuffle(accesses)
    return AccessTrace(accesses)


def concat_traces(traces: Sequence[AccessTrace]) -> AccessTrace:
    merged = AccessTrace()
    for trace in traces:
        merged.extend(trace)
    return merged


def interleave_traces(traces: Sequence[AccessTrace]) -> AccessTrace:
    """Round-robin interleaving, modelling concurrent operator tasks
    sharing one store instance (paper section 6.4)."""
    iterators = [iter(t) for t in traces]
    merged: List[StateAccess] = []
    active = list(range(len(iterators)))
    while active:
        still_active = []
        for idx in active:
            try:
                merged.append(next(iterators[idx]))
                still_active.append(idx)
            except StopIteration:
                pass
        active = still_active
    return AccessTrace(merged)
