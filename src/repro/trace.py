"""State-access trace model shared by the whole suite.

The paper represents a state access as a tuple ``a = (p, k, v, t)`` --
an operation ``p`` on key ``k`` with value ``v`` at time ``t`` (section
2.3).  Both the instrumented mini stream processor (the "real" traces of
section 3) and the Gadget workload generator (section 5) emit
:class:`StateAccess` records, so every analysis and replay tool operates
on a single format.

Traces store the value *size* rather than value bytes, mirroring
Gadget's design decision to never materialize operator state: values
are synthesized at replay time from the recorded size.

Storage layout
--------------

:class:`AccessTrace` is columnar (struct-of-arrays): op codes live in
an ``array('B')``, value sizes in an ``array('I')``, timestamps in an
``array('q')``, and keys are interned into a single contiguous
``bytearray`` pool addressed by an offset index, with each access
holding a 4-byte key id.  That is ~17 bytes per operation instead of a
~200-byte heap-allocated object, and it lets ``save``/``load``,
``op_counts``, ``filter``, shuffling and interleaving run over flat
buffers.  :class:`StateAccess` objects are materialized lazily, only
when callers use the object API (``trace[i]``, iteration,
``trace.accesses``); the replayer consumes :meth:`AccessTrace.iter_raw`
and never materializes them at all.
"""

from __future__ import annotations

import struct
import sys
from array import array
from enum import Enum
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
)


class OpType(str, Enum):
    """The four operations of the RocksDB-flavoured state API."""

    GET = "get"
    PUT = "put"
    MERGE = "merge"
    DELETE = "delete"


_OP_CODES = {OpType.GET: 0, OpType.PUT: 1, OpType.MERGE: 2, OpType.DELETE: 3}
_CODE_OPS = {code: op for op, code in _OP_CODES.items()}
#: opcode -> OpType, indexable by the raw ``iter_raw`` codes
OPS_BY_CODE = (OpType.GET, OpType.PUT, OpType.MERGE, OpType.DELETE)
_ENTRY = struct.Struct("<BIIq")  # op, key len, value size, timestamp
_HEADER = struct.Struct("<HQ")  # version, count
_V2_HEADER = struct.Struct("<QQ")  # unique keys, key pool length

_LITTLE_ENDIAN = sys.byteorder == "little"


class StateAccess(NamedTuple):
    """One request sent to the state store.

    Immutable and value-compared, like the frozen dataclass it
    replaces; a ``NamedTuple`` because the columnar trace materializes
    these lazily and tuple construction is several times cheaper.
    """

    op: OpType
    key: bytes
    value_size: int = 0
    timestamp: int = 0

    def encode(self) -> bytes:
        return (
            _ENTRY.pack(
                _OP_CODES[self.op], len(self.key), self.value_size, self.timestamp
            )
            + self.key
        )


def _le(arr: array) -> bytes:
    """Array contents as little-endian bytes (trace file byte order)."""
    if _LITTLE_ENDIAN or arr.itemsize == 1:
        return arr.tobytes()
    swapped = array(arr.typecode, arr)
    swapped.byteswap()
    return swapped.tobytes()


def _from_le(typecode: str, data) -> array:
    arr = array(typecode)
    arr.frombytes(data)
    if not _LITTLE_ENDIAN and arr.itemsize > 1:
        arr.byteswap()
    return arr


class AccessTrace:
    """An ordered state access stream plus bookkeeping helpers."""

    __slots__ = (
        "_ops",
        "_vsizes",
        "_tstamps",
        "_kids",
        "_kblob",
        "_koffs",
        "_kindex",
        "_klist",
    )

    def __init__(self, accesses: Optional[Iterable[StateAccess]] = None) -> None:
        self._ops = array("B")  # op codes, one byte per access
        self._vsizes = array("I")  # value sizes
        self._tstamps = array("q")  # event timestamps
        self._kids = array("I")  # per-access index into the key pool
        self._kblob = bytearray()  # unique keys, packed back to back
        self._koffs = array("Q", [0])  # key i spans _kblob[offs[i]:offs[i+1]]
        self._kindex: Optional[Dict[bytes, int]] = {}  # key -> key id
        self._klist: Optional[List[bytes]] = []  # key id -> key
        if accesses is not None:
            for access in accesses:
                self.record(access.op, access.key, access.value_size, access.timestamp)

    # -- key pool ----------------------------------------------------------

    def unique_keys(self) -> List[bytes]:
        """Interned key pool as bytes objects (key id -> key).

        May contain keys no longer referenced by any access after
        ``filter``/slicing; ``distinct_keys`` counts referenced keys.
        """
        klist = self._klist
        if klist is None:
            blob = bytes(self._kblob)
            offs = self._koffs
            klist = [blob[offs[i] : offs[i + 1]] for i in range(len(offs) - 1)]
            self._klist = klist
        return klist

    def _key_index(self) -> Dict[bytes, int]:
        index = self._kindex
        if index is None:
            index = {key: kid for kid, key in enumerate(self.unique_keys())}
            self._kindex = index
        return index

    def _intern(self, key: bytes) -> int:
        index = self._kindex
        if index is None:
            index = self._key_index()
        kid = index.get(key)
        if kid is None:
            key = bytes(key)
            kid = len(index)
            index[key] = kid
            self._kblob += key
            self._koffs.append(len(self._kblob))
            if self._klist is not None:
                self._klist.append(key)
        return kid

    # -- raw column views --------------------------------------------------

    @property
    def op_codes(self) -> array:
        """Opcode column (0=get 1=put 2=merge 3=delete); do not mutate."""
        return self._ops

    @property
    def key_ids(self) -> array:
        """Key-id column indexing :meth:`unique_keys`; do not mutate."""
        return self._kids

    @property
    def value_sizes(self) -> array:
        """Value-size column; do not mutate."""
        return self._vsizes

    @property
    def timestamps(self) -> array:
        """Timestamp column; do not mutate."""
        return self._tstamps

    @property
    def nbytes(self) -> int:
        """Bytes held by the columns and the key pool."""
        return (
            len(self._ops) * self._ops.itemsize
            + len(self._vsizes) * self._vsizes.itemsize
            + len(self._tstamps) * self._tstamps.itemsize
            + len(self._kids) * self._kids.itemsize
            + len(self._kblob)
            + len(self._koffs) * self._koffs.itemsize
        )

    # -- recording ---------------------------------------------------------

    def record(
        self, op: OpType, key: bytes, value_size: int = 0, timestamp: int = 0
    ) -> None:
        self._ops.append(_OP_CODES[op])
        self._kids.append(self._intern(key))
        self._vsizes.append(value_size)
        self._tstamps.append(timestamp)

    def extend(self, other: "AccessTrace") -> None:
        remap = array("I", [self._intern(key) for key in other.unique_keys()])
        self._ops.extend(other._ops)
        self._vsizes.extend(other._vsizes)
        self._tstamps.extend(other._tstamps)
        kids = self._kids
        for kid in other._kids:
            kids.append(remap[kid])

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._ops)

    def _materialize(self, index: int) -> StateAccess:
        return StateAccess(
            OPS_BY_CODE[self._ops[index]],
            self.unique_keys()[self._kids[index]],
            self._vsizes[index],
            self._tstamps[index],
        )

    def __iter__(self) -> Iterator[StateAccess]:
        keys = self.unique_keys()
        ops_by_code = OPS_BY_CODE
        for code, kid, vsize, tstamp in zip(
            self._ops, self._kids, self._vsizes, self._tstamps
        ):
            yield StateAccess(ops_by_code[code], keys[kid], vsize, tstamp)

    def iter_raw(self) -> Iterator[tuple]:
        """Zero-materialization iteration: ``(opcode, key, value_size)``.

        The replay fast path: no :class:`StateAccess` objects, no enum
        comparisons -- opcodes are small ints and keys come straight
        from the interned pool (one shared bytes object per distinct
        key, so no per-op allocation).
        """
        keys = self.unique_keys()
        for code, kid, vsize in zip(self._ops, self._kids, self._vsizes):
            yield code, keys[kid], vsize

    def __getitem__(self, index):
        if isinstance(index, slice):
            new = self.__class__()
            new._ops = self._ops[index]
            new._vsizes = self._vsizes[index]
            new._tstamps = self._tstamps[index]
            new._kids = self._kids[index]
            new._kblob = bytearray(self._kblob)
            new._koffs = array("Q", self._koffs)
            new._kindex = None
            new._klist = None
            return new
        return self._materialize(index)

    def select(self, indices: Iterable[int]) -> "AccessTrace":
        """New trace holding the rows at ``indices``, in that order.

        A columnar gather: the key pool is carried over wholesale so
        key ids stay valid and no re-interning happens.
        """
        new = self.__class__()
        new._ops = array("B", map(self._ops.__getitem__, indices))
        n = len(new._ops)
        if n:
            new._vsizes = array("I", map(self._vsizes.__getitem__, indices))
            new._tstamps = array("q", map(self._tstamps.__getitem__, indices))
            new._kids = array("I", map(self._kids.__getitem__, indices))
        new._kblob = bytearray(self._kblob)
        new._koffs = array("Q", self._koffs)
        new._kindex = None
        new._klist = None
        return new

    # -- compatibility view --------------------------------------------------

    @property
    def accesses(self) -> List[StateAccess]:
        """The trace as a list of :class:`StateAccess` (materialized).

        A compatibility view of the columns; mutations to the returned
        list do not write back into the trace.
        """
        return list(self)

    # -- summaries -----------------------------------------------------------

    def op_counts(self) -> Dict[OpType, int]:
        ops = self._ops
        if hasattr(ops, "count"):
            return {op: ops.count(code) for op, code in _OP_CODES.items()}
        # attached traces expose the opcode column as a memoryview,
        # which has no ``count``
        totals = [0, 0, 0, 0]
        for code in ops:
            totals[code] += 1
        return {op: totals[code] for op, code in _OP_CODES.items()}

    def op_fractions(self) -> Dict[OpType, float]:
        counts = self.op_counts()
        total = len(self._ops)
        if total == 0:
            return {op: 0.0 for op in OpType}
        return {op: count / total for op, count in counts.items()}

    def key_sequence(self) -> List[bytes]:
        keys = self.unique_keys()
        return [keys[kid] for kid in self._kids]

    def distinct_keys(self) -> int:
        return len(set(self._kids))

    def filter(self, predicate: Callable[[StateAccess], bool]) -> "AccessTrace":
        return self.select(
            [index for index, access in enumerate(self) if predicate(access)]
        )

    # -- persistence (the paper's "offline mode" trace files) ----------------

    MAGIC = b"GDGT"
    VERSION = 2

    def save(self, path: str, version: Optional[int] = None) -> None:
        """Write a trace file; format v2 (columnar) by default.

        v2 lays the columns out back to back after a fixed header, so
        saving is a handful of buffer-sized writes instead of one
        ``struct.pack`` per record.  ``version=1`` writes the legacy
        record-oriented format for tools that predate v2.
        """
        version = self.VERSION if version is None else version
        with open(path, "wb") as handle:
            handle.write(self.MAGIC)
            handle.write(_HEADER.pack(version, len(self._ops)))
            if version == 1:
                buffer = bytearray()
                for access in self:
                    buffer += access.encode()
                handle.write(buffer)
            elif version == 2:
                handle.write(_V2_HEADER.pack(len(self._koffs) - 1, len(self._kblob)))
                handle.write(_le(self._koffs))
                handle.write(self._kblob)
                handle.write(_le(self._ops))
                handle.write(_le(self._kids))
                handle.write(_le(self._vsizes))
                handle.write(_le(self._tstamps))
            else:
                raise ValueError(f"cannot write trace version: {version}")

    @classmethod
    def load(cls, path: str) -> "AccessTrace":
        with open(path, "rb") as handle:
            data = handle.read()
        if data[:4] != cls.MAGIC:
            raise ValueError(f"{path} is not a Gadget trace file")
        version, count = _HEADER.unpack_from(data, 4)
        offset = 4 + _HEADER.size
        if version == 1:
            return cls._load_v1(data, offset, count)
        if version == 2:
            return cls._load_v2(data, offset, count)
        raise ValueError(f"unsupported trace version: {version}")

    @classmethod
    def _load_v1(cls, data: bytes, offset: int, count: int) -> "AccessTrace":
        """Legacy record-oriented format: header + key per access.

        Keys are sliced straight out of the read buffer (one copy) and
        interned, so repeated keys share a single bytes object.
        """
        trace = cls()
        ops = trace._ops
        kids = trace._kids
        vsizes = trace._vsizes
        tstamps = trace._tstamps
        intern = trace._intern
        unpack_from = _ENTRY.unpack_from
        entry_size = _ENTRY.size
        for _ in range(count):
            code, klen, vsize, timestamp = unpack_from(data, offset)
            offset += entry_size
            ops.append(code)
            kids.append(intern(data[offset : offset + klen]))
            vsizes.append(vsize)
            tstamps.append(timestamp)
            offset += klen
        return trace

    # -- shared-memory images (multi-process replay) -------------------------
    #
    # The v2 file layout doubles as the in-memory wire format between
    # replay processes: the parent writes one image into a
    # ``multiprocessing.shared_memory`` segment and every worker
    # rebuilds column *views* over the same physical pages --
    # zero-copy, no pickling of multi-million-op traces.

    def image_nbytes(self) -> int:
        """Exact byte size of this trace's v2 image (for sizing a
        shared-memory segment before :meth:`write_image`)."""
        count = len(self._ops)
        return (
            4  # magic
            + _HEADER.size
            + _V2_HEADER.size
            + len(self._koffs) * 8
            + len(self._kblob)
            + count * (1 + 4 + 4 + 8)  # ops + kids + vsizes + tstamps
        )

    def write_image(self, buffer) -> int:
        """Serialize the v2 image into a writable buffer; returns the
        bytes written (== :meth:`image_nbytes`).

        ``buffer`` is any writable bytes-like object at least
        ``image_nbytes()`` long -- typically a
        ``multiprocessing.shared_memory.SharedMemory().buf``.
        """
        view = memoryview(buffer)
        offset = 0

        def put(chunk) -> None:
            nonlocal offset
            nbytes = len(chunk)
            view[offset : offset + nbytes] = chunk
            offset += nbytes

        put(self.MAGIC)
        put(_HEADER.pack(2, len(self._ops)))
        put(_V2_HEADER.pack(len(self._koffs) - 1, len(self._kblob)))
        put(_le(self._koffs))
        put(bytes(self._kblob))
        put(_le(self._ops))
        put(_le(self._kids))
        put(_le(self._vsizes))
        put(_le(self._tstamps))
        return offset

    @classmethod
    def attach(cls, buffer) -> "AccessTrace":
        """Trace view over a v2 image in ``buffer`` -- zero-copy.

        On little-endian hosts (the file byte order) every column is a
        ``memoryview`` cast straight over the buffer: no bytes are
        copied, so attaching a multi-GB shared trace is O(1).
        Big-endian hosts fall back to byteswapped array copies.

        Attached traces are **read-only** (``record``/``extend`` on
        one raise).  :meth:`select` gathers into fresh, independent
        arrays, so a worker can attach, carve out its shard, then drop
        the attached trace to release the buffer -- an outstanding
        memoryview keeps ``SharedMemory.close()`` from unmapping.
        """
        view = memoryview(buffer)
        if bytes(view[:4]) != cls.MAGIC:
            raise ValueError("buffer does not hold a Gadget trace image")
        version, count = _HEADER.unpack_from(view, 4)
        if version != 2:
            raise ValueError(
                f"can only attach v2 columnar images, got version {version}"
            )
        offset = 4 + _HEADER.size
        n_unique, blob_len = _V2_HEADER.unpack_from(view, offset)
        offset += _V2_HEADER.size

        def take(nbytes: int):
            nonlocal offset
            chunk = view[offset : offset + nbytes]
            if len(chunk) != nbytes:
                raise ValueError("truncated trace image")
            offset += nbytes
            return chunk

        trace = cls()
        if _LITTLE_ENDIAN:
            trace._koffs = take((n_unique + 1) * 8).cast("Q")
            trace._kblob = take(blob_len)
            trace._ops = take(count)
            trace._kids = take(count * 4).cast("I")
            trace._vsizes = take(count * 4).cast("I")
            trace._tstamps = take(count * 8).cast("q")
        else:
            trace._koffs = _from_le("Q", take((n_unique + 1) * 8))
            trace._kblob = bytearray(take(blob_len))
            trace._ops = _from_le("B", take(count))
            trace._kids = _from_le("I", take(count * 4))
            trace._vsizes = _from_le("I", take(count * 4))
            trace._tstamps = _from_le("q", take(count * 8))
        trace._kindex = None
        trace._klist = None
        return trace

    @classmethod
    def _load_v2(cls, data: bytes, offset: int, count: int) -> "AccessTrace":
        n_unique, blob_len = _V2_HEADER.unpack_from(data, offset)
        offset += _V2_HEADER.size
        view = memoryview(data)

        def take(nbytes: int):
            nonlocal offset
            chunk = view[offset : offset + nbytes]
            if len(chunk) != nbytes:
                raise ValueError("truncated trace file")
            offset += nbytes
            return chunk

        trace = cls()
        trace._koffs = _from_le("Q", take((n_unique + 1) * 8))
        trace._kblob = bytearray(take(blob_len))
        trace._ops = _from_le("B", take(count))
        trace._kids = _from_le("I", take(count * 4))
        trace._vsizes = _from_le("I", take(count * 4))
        trace._tstamps = _from_le("q", take(count * 8))
        trace._kindex = None
        trace._klist = None
        return trace


def shuffled_trace(trace: AccessTrace, rng) -> AccessTrace:
    """Random permutation of a trace (the paper's locality baseline).

    Preserves key popularity while destroying ordering, which is how
    Figures 5 and 7 contrast real locality against chance.  Shuffles a
    row-index permutation and gathers the columns, so the permutation
    drawn from ``rng`` is identical to shuffling the access list.
    """
    indices = list(range(len(trace)))
    rng.shuffle(indices)
    return trace.select(indices)


def concat_traces(traces: Sequence[AccessTrace]) -> AccessTrace:
    merged = AccessTrace()
    for trace in traces:
        merged.extend(trace)
    return merged


def interleave_traces(traces: Sequence[AccessTrace]) -> AccessTrace:
    """Round-robin interleaving, modelling concurrent operator tasks
    sharing one store instance (paper section 6.4)."""
    merged = AccessTrace()
    remaps = [
        array("I", [merged._intern(key) for key in trace.unique_keys()])
        for trace in traces
    ]
    ops = merged._ops
    kids = merged._kids
    vsizes = merged._vsizes
    tstamps = merged._tstamps
    iterators = [
        zip(t._ops, t._kids, t._vsizes, t._tstamps) for t in traces
    ]
    active = list(range(len(iterators)))
    while active:
        still_active = []
        for idx in active:
            try:
                code, kid, vsize, tstamp = next(iterators[idx])
            except StopIteration:
                continue
            ops.append(code)
            kids.append(remaps[idx][kid])
            vsizes.append(vsize)
            tstamps.append(tstamp)
            still_active.append(idx)
        active = still_active
    return merged
