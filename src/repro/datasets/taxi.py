"""Synthetic Taxi stream: NYC TLC-style trip and fare events.

Models the 2013 TLC slice the paper uses (1 M trip events, 500 K fare
events, keyed by medallionID).  Statistics preserved:

* a medallion produces only a pickup and a drop-off per trip, separated
  by a long ride (median ~10 min), so its event rate is *low* relative
  to the default 5 s window -- this is why Taxi produces the highest
  delete fraction in Table 1 and why small windows/gaps inflate deletes
  further (Figure 2)
* fare events arrive around the drop-off and form the second join input
* rides far exceed the 2 min default session gap, splitting sessions
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import List, Tuple

from ..events import Event
from .base import DatasetConfig, StreamBuilder, exponential_ms, lognormal_ms


@dataclass
class TaxiConfig(DatasetConfig):
    num_medallions: int = 1500
    #: Median ride duration (dominates the pickup->drop-off gap).
    ride_duration_median_ms: float = 600_000.0
    #: Mean idle gap between a drop-off and the next pickup.
    idle_gap_ms: float = 180_000.0
    #: Fraction of trips that produce a fare event.
    fare_fraction: float = 0.5
    value_size: int = 48


KIND_PICKUP = "pickup"
KIND_DROPOFF = "dropoff"
KIND_FARE = "fare"


def generate_taxi(config: TaxiConfig = TaxiConfig()) -> Tuple[List[Event], List[Event]]:
    """Return ``(trip_events, fare_events)`` sorted by event time."""
    rng = random.Random(config.seed)
    trips = StreamBuilder()
    fares = StreamBuilder()
    # Each medallion cycles pickup -> ride -> drop-off -> idle -> ...
    # until the trip-event budget is exhausted; a heap orders the
    # medallions by their next pickup time.
    heap = [
        (exponential_ms(rng, config.idle_gap_ms), f"taxi-{i:05d}".encode())
        for i in range(config.num_medallions)
    ]
    heapq.heapify(heap)
    while len(trips) < config.target_events:
        pickup_time, key = heapq.heappop(heap)
        ride = lognormal_ms(rng, config.ride_duration_median_ms)
        dropoff_time = pickup_time + ride
        trips.add(key, pickup_time, config.value_size, KIND_PICKUP)
        trips.add(key, dropoff_time, config.value_size, KIND_DROPOFF)
        if rng.random() < config.fare_fraction:
            # Fares are recorded at payment, just before the trip record
            # closes; split fares occasionally produce a second event.
            fare_lead = exponential_ms(rng, 2_000.0)
            fares.add(
                key, max(pickup_time + 1, dropoff_time - fare_lead),
                config.value_size, KIND_FARE,
            )
            if rng.random() < 0.25:
                second_lead = exponential_ms(rng, 4_000.0)
                fares.add(
                    key, max(pickup_time + 1, dropoff_time - second_lead),
                    config.value_size, KIND_FARE,
                )
        next_pickup = dropoff_time + exponential_ms(rng, config.idle_gap_ms)
        heapq.heappush(heap, (next_pickup, key))
    return trips.finish(config.target_events), fares.finish()


def generate_taxi_trips(config: TaxiConfig = TaxiConfig()) -> List[Event]:
    trips, _ = generate_taxi(config)
    return trips
