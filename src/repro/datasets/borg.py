"""Synthetic Borg stream: cluster job and task events.

Models the Google cluster-usage trace slice the paper uses (2.5 M task
events, 26 K job events, keyed by jobID).  Statistics preserved:

* jobs arrive continuously (Poisson); each job emits a burst of task
  status events while it runs, so a jobID recurs many times within a
  5 s window (the paper's Borg tumbling window holds ~11 updates per
  key per window, which keeps the delete fraction low, Table 1)
* job lifetimes are heavy-tailed
* a separate job-event stream carries submit/finish events -- the
  finish event is what triggers continuous-join state cleanup
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..events import Event
from .base import DatasetConfig, StreamBuilder, exponential_ms, lognormal_ms


@dataclass
class BorgConfig(DatasetConfig):
    #: Mean gap between job arrivals.
    job_interarrival_ms: float = 400.0
    #: Median job lifetime.
    job_lifetime_median_ms: float = 30_000.0
    #: Lognormal sigma of job lifetimes.  Cluster traces are famously
    #: heavy-tailed: most jobs are short, a few run very long and
    #: dominate the event volume (this skews the key distribution).
    job_lifetime_sigma: float = 1.5
    #: Mean gap between task events while a job is alive.
    task_event_gap_ms: float = 450.0
    value_size: int = 64


KIND_TASK = "task"
KIND_SUBMIT = "submit"
KIND_FINISH = "finish"


def generate_borg(config: BorgConfig = BorgConfig()) -> Tuple[List[Event], List[Event]]:
    """Return ``(task_events, job_events)`` sorted by event time."""
    rng = random.Random(config.seed)
    tasks = StreamBuilder()
    jobs = StreamBuilder()
    now = 0
    job_id = 0
    while len(tasks) < config.target_events:
        now += exponential_ms(rng, config.job_interarrival_ms)
        job_id += 1
        key = f"job-{job_id:07d}".encode()
        lifetime = lognormal_ms(
            rng, config.job_lifetime_median_ms, config.job_lifetime_sigma
        )
        jobs.add(key, now, config.value_size, KIND_SUBMIT)
        t = now
        deadline = now + lifetime
        while t < deadline:
            t += exponential_ms(rng, config.task_event_gap_ms)
            if t >= deadline:
                break
            tasks.add(key, t, config.value_size, KIND_TASK)
        jobs.add(key, deadline, config.value_size, KIND_FINISH)
    return tasks.finish(config.target_events), jobs.finish()


def generate_borg_tasks(config: BorgConfig = BorgConfig()) -> List[Event]:
    """The single-input Borg stream used by window/aggregation operators."""
    tasks, _ = generate_borg(config)
    return tasks
