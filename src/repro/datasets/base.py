"""Shared machinery for the synthetic dataset generators.

The paper drives its characterization with three public traces (Borg,
Taxi, Azure).  Those traces are not redistributable here, so each
dataset module synthesizes a stream with the salient statistics the
paper's findings depend on: arrival rate relative to the default 5 s
window, key cardinality and reuse, paired begin/end events, and
heavy-tailed activity durations.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from ..events import Event


@dataclass
class DatasetConfig:
    """Base knobs common to all synthetic streams."""

    seed: int = 42
    #: Approximate number of events to generate.
    target_events: int = 100_000


class StreamBuilder:
    """Accumulates events and finalizes them into time order."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def add(self, key: bytes, timestamp: int, value_size: int = 8, kind: str = "") -> None:
        self._events.append(Event(key, int(timestamp), value_size, kind))

    def finish(self, limit: int = 0) -> List[Event]:
        self._events.sort(key=lambda e: e.timestamp)
        if limit and len(self._events) > limit:
            self._events = self._events[:limit]
        return self._events

    def __len__(self) -> int:
        return len(self._events)


def exponential_ms(rng: random.Random, mean_ms: float) -> int:
    """Sample an exponential interarrival gap in whole milliseconds."""
    return max(1, int(rng.expovariate(1.0 / mean_ms)))


def lognormal_ms(rng: random.Random, median_ms: float, sigma: float = 0.6) -> int:
    """Heavy-tailed duration with the given median."""
    return max(1, int(rng.lognormvariate(math.log(median_ms), sigma)))


def bounded_zipf(rng: random.Random, n: int, skew: float = 1.1) -> int:
    """Sample an index in [0, n) under a bounded Zipf distribution.

    Uses the rejection-inversion-free CDF-table approach: fine for the
    dataset generators where ``n`` is at most a few thousand.
    """
    # Table construction is cached on the Random instance per (n, skew).
    cache = getattr(rng, "_zipf_cache", None)
    if cache is None:
        cache = {}
        rng._zipf_cache = cache  # type: ignore[attr-defined]
    table = cache.get((n, skew))
    if table is None:
        weights = [1.0 / (i + 1) ** skew for i in range(n)]
        total = sum(weights)
        acc = 0.0
        table = []
        for weight in weights:
            acc += weight / total
            table.append(acc)
        cache[(n, skew)] = table
    u = rng.random()
    lo, hi = 0, n - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if table[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return lo
