"""Synthetic Azure stream: VM creation events.

Models the 2017 Azure VM trace the paper uses (4 M VM creation events,
keyed by subscriptionID).  Statistics preserved:

* subscription popularity is heavily skewed (a few subscriptions create
  most VMs)
* creations come in bursts -- deployments spin up several VMs in quick
  succession -- so a subscription key recurs a handful of times within
  a 5 s window (Table 1's Azure delete fraction sits between Borg's and
  Taxi's)
* it is a single stream: the paper cannot run joins on Azure, and
  neither do we
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..events import Event
from .base import DatasetConfig, StreamBuilder, bounded_zipf, exponential_ms


@dataclass
class AzureConfig(DatasetConfig):
    num_subscriptions: int = 3000
    subscription_skew: float = 1.05
    #: Mean gap between deployment bursts (across all subscriptions).
    burst_interarrival_ms: float = 700.0
    #: Mean VMs created per deployment burst.
    mean_burst_size: float = 4.0
    #: Mean gap between creations inside a burst.
    intra_burst_gap_ms: float = 800.0
    value_size: int = 32


KIND_VM_CREATE = "vm_create"


def generate_azure(config: AzureConfig = AzureConfig()) -> List[Event]:
    rng = random.Random(config.seed)
    builder = StreamBuilder()
    now = 0
    while len(builder) < config.target_events:
        now += exponential_ms(rng, config.burst_interarrival_ms)
        subscription = bounded_zipf(
            rng, config.num_subscriptions, config.subscription_skew
        )
        key = f"sub-{subscription:05d}".encode()
        burst = max(1, int(rng.expovariate(1.0 / config.mean_burst_size)))
        t = now
        for _ in range(burst):
            builder.add(key, t, config.value_size, KIND_VM_CREATE)
            t += exponential_ms(rng, config.intra_burst_gap_ms)
    return builder.finish(config.target_events)
