"""Synthetic stand-ins for the paper's three public data streams."""

from .azure import AzureConfig, KIND_VM_CREATE, generate_azure
from .base import DatasetConfig, StreamBuilder, bounded_zipf, exponential_ms, lognormal_ms
from .borg import (
    BorgConfig,
    KIND_FINISH,
    KIND_SUBMIT,
    KIND_TASK,
    generate_borg,
    generate_borg_tasks,
)
from .taxi import (
    KIND_DROPOFF,
    KIND_FARE,
    KIND_PICKUP,
    TaxiConfig,
    generate_taxi,
    generate_taxi_trips,
)

__all__ = [
    "AzureConfig",
    "BorgConfig",
    "DatasetConfig",
    "KIND_DROPOFF",
    "KIND_FARE",
    "KIND_FINISH",
    "KIND_PICKUP",
    "KIND_SUBMIT",
    "KIND_TASK",
    "KIND_VM_CREATE",
    "StreamBuilder",
    "TaxiConfig",
    "bounded_zipf",
    "exponential_ms",
    "generate_azure",
    "generate_borg",
    "generate_borg_tasks",
    "generate_taxi",
    "generate_taxi_trips",
    "lognormal_ms",
]
