"""Distributed cluster mode: partitioned + replicated store serving.

Composes the remote layer's pieces (the ``selectors``-loop
:class:`~repro.kvstores.remote.StoreServer`, protocol v2 ``OP_BATCH``,
the crc32 partitioner shared with ``shard_trace``) into a real cluster:

* :class:`ClusterConfig` -- partitions x replication factor x ack level
* :class:`StoreCluster` -- spawns and supervises the in-process server
  fleet (kill / restart / add nodes)
* :class:`ClusterConnector` -- the client: consistent-hash routing,
  cross-partition batch splitting, chain configuration, failover,
  online partition migration
* :class:`ChaosConnector` / :func:`evaluate_cluster_recovery` -- fire a
  :class:`~repro.faults.ClusterFaultPlan` mid-replay and report what
  clients actually observed (recovery time, lost-ack window, tail
  latency), like ``evaluate_crash_recovery`` does for one node
"""

from .chaos import ChaosConnector, ClusterRecoveryResult, evaluate_cluster_recovery
from .config import ACK_LEVELS, ClusterConfig, load_cluster_config
from .connector import ClusterConnector
from .manager import ClusterNode, StoreCluster

__all__ = [
    "ACK_LEVELS",
    "ChaosConnector",
    "ClusterConfig",
    "ClusterConnector",
    "ClusterNode",
    "ClusterRecoveryResult",
    "StoreCluster",
    "evaluate_cluster_recovery",
    "load_cluster_config",
]
