"""The cluster client: routing, batch splitting, failover, rebalance.

:class:`ClusterConnector` implements the connector surface the trace
replayer and evaluator already speak, against N server chains:

* **Routing** -- ``crc32(key) % partitions``, byte-identical to
  ``shard_trace``'s partitioner, so a trace sharded for offline replay
  and a live cluster agree on key placement.
* **Batching** -- ``multi_get`` / ``apply_batch`` split per partition
  and cost one round trip per *touched* partition, reassembled in
  request order.
* **Chains** -- the connector owns the partition map.  It pushes each
  chain's replication links to the servers over the admin channel
  (node *i* forwards to node *i+1*); the ack level decides which links
  are synchronous (see :meth:`_link_sync`).
* **Failover** -- on a failed primary op the connector probes the
  chain, promotes the first live member, rewires the survivors, and
  retries.  The loop is bounded by the :class:`~repro.faults.
  RetryPolicy` attempt budget; per-endpoint clients deliberately get
  *no* retry policy of their own, so a failover never nests one retry
  budget inside another.
* **Rebalance** -- :meth:`begin_migration` dual-writes to the target
  while a snapshot copies, :meth:`complete_migration` cuts the chain
  head over atomically (from the single client's perspective, which
  is the harness's write model).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple
from zlib import crc32

from ..faults.retry import RetryPolicy
from ..kvstores.api import OP_DELETE, OP_GET, OP_MERGE, OP_PUT, BatchOp
from ..kvstores.connectors import PipelineSession
from ..kvstores.remote import (
    _BATCH_ALL_OK,
    REPLY_ERROR,
    REPLY_MISSING,
    REPLY_VALUE,
    RemoteStoreClient,
    RemoteStoreError,
    _BatchUnsupportedError,
)
from ..obs import tracing
from .manager import StoreCluster

_WRITE_OPS = frozenset((OP_PUT, OP_MERGE, OP_DELETE))
_COPY_BATCH = 256  # ops per apply_batch frame during snapshot copy


class _Migration:
    """In-flight partition move: dual-write target + catch-up state."""

    __slots__ = ("target", "dirty")

    def __init__(self, target: str) -> None:
        self.target = target
        #: keys already dual-written; the snapshot copy skips them so a
        #: stale snapshot value never clobbers a newer dual-write
        self.dirty: Set[bytes] = set()


class ClusterConnector:
    """Partitioned, replicated, failover-capable connector."""

    def __init__(
        self,
        cluster: StoreCluster,
        ack: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
    ) -> None:
        config = cluster.config
        self._cluster = cluster
        self.ack = ack if ack is not None else config.ack
        self._retry_policy = retry_policy
        self._timeout = timeout if timeout is not None else config.timeout_s
        self.partitions = config.partitions
        self.name = f"cluster:{config.store}:{config.label}"
        #: live chains, primary first; owned by this connector after
        #: construction (failover and cutover rewrite them)
        self._chains: List[List[str]] = [
            cluster.chain(p) for p in range(config.partitions)
        ]
        self._clients: Dict[str, RemoteStoreClient] = {}
        #: client constructions per endpoint; anything past the first
        #: is a re-establishment (how a failover's latency spike gets
        #: attributed to reconnects in the metrics series)
        self._connects: Dict[str, int] = {}
        #: endpoints the client is partitioned away from (chaos action)
        self._isolated: Set[str] = set()
        self._migrations: Dict[int, _Migration] = {}
        # -- observability counters (metrics gauges read these) --
        self.failovers = 0  # repairs that changed a primary
        self.chain_repairs = 0  # all repairs, promotion or not
        self.migrations_completed = 0
        self.failover_ms: List[float] = []  # per-repair wall time
        # pipelined-mode gauges (zero for synchronous use)
        self.pipeline_flushes = 0
        self.flush_coalesced_ops = 0
        self.inflight_depth = 0
        for partition in range(self.partitions):
            self._configure_chain(partition)

    # -- endpoint plumbing ---------------------------------------------------

    def _client(self, name: str) -> RemoteStoreClient:
        """(Cached) client for a node.  Raises if the chaos plan has
        isolated us from it; connects fresh if the cache is cold."""
        if name in self._isolated:
            raise RemoteStoreError(
                f"client is partitioned from {name} "
                f"at {self._peer_of(name)} (chaos isolation)"
            )
        client = self._clients.get(name)
        if client is None:
            try:
                host, port = self._cluster.address(name)
            except RuntimeError as exc:  # node is down: same failure class
                raise RemoteStoreError(str(exc)) from exc
            client = RemoteStoreClient(
                host, port, store_name=name, timeout=self._timeout
            )
            self._clients[name] = client
            self._connects[name] = self._connects.get(name, 0) + 1
        return client

    def _peer_of(self, name: str) -> str:
        try:
            host, port = self._cluster.address(name)
            return f"{host}:{port}"
        except RuntimeError:
            return "<down>"

    def _forget_client(self, name: str) -> None:
        client = self._clients.pop(name, None)
        if client is not None:
            client.close()

    def reconnects_for(self, name: str) -> int:
        """Connections re-established to an endpoint (fresh clients
        after a drop, plus any in-client reconnects)."""
        client = self._clients.get(name)
        in_client = client.reconnects if client is not None else 0
        return max(0, self._connects.get(name, 0) - 1) + in_client

    def endpoints(self) -> List[str]:
        """Every node any chain currently references, primaries first."""
        out: List[str] = []
        for chain in self._chains:
            for name in chain:
                if name not in out:
                    out.append(name)
        return out

    def chain(self, partition: int) -> List[str]:
        return list(self._chains[partition])

    # -- chain wiring --------------------------------------------------------

    def _link_sync(self, position: int) -> bool:
        """Is the replication link *out of* chain position ``position``
        synchronous?  ``ack`` counts replicas confirmed at client-ack
        time: ``all`` makes every link wait (tail-confirmed writes),
        ``one`` only the primary's link, ``none`` nothing."""
        if self.ack == "all":
            return True
        if self.ack == "one":
            return position == 0
        return False

    def _configure_chain(self, partition: int) -> None:
        """Push the chain's links to the servers: node *i* forwards to
        node *i+1*; the tail forwards nowhere."""
        chain = self._chains[partition]
        for position, name in enumerate(chain):
            if position + 1 < len(chain):
                downstream = list(self._cluster.address(chain[position + 1]))
            else:
                downstream = None
            self._client(name).admin(
                "configure",
                {"downstream": downstream, "sync": self._link_sync(position)},
            )

    # -- failover ------------------------------------------------------------

    def _max_attempts(self) -> int:
        if self._retry_policy is not None:
            return self._retry_policy.max_attempts
        # no policy: one try per chain member plus one against the
        # repaired chain is enough to survive a single failure
        return max(len(chain) for chain in self._chains) + 1

    def _on_primary(self, partition: int, fn: Callable[[RemoteStoreClient], object]):
        """Run ``fn`` against the partition's primary, repairing the
        chain and retrying on failure.

        The attempt budget is the retry policy's ``max_attempts`` (a
        failover consumes attempts from the same budget as a transient
        error would -- it cannot silently retry forever), and the
        policy's backoff paces the retries.
        """
        attempts = self._max_attempts()
        delays = (
            iter(self._retry_policy.base_delays())
            if self._retry_policy is not None
            else iter(())
        )
        last: Optional[RemoteStoreError] = None
        for attempt in range(attempts):
            try:
                client = self._client(self._chains[partition][0])
                return fn(client)
            except RemoteStoreError as exc:
                last = exc
                # the failed client's socket may be wedged; a fresh
                # connection is part of the repair
                self._forget_client(self._chains[partition][0])
                if attempt + 1 >= attempts:
                    break
                self._repair(partition, cause=exc)
                delay = next(delays, 0.0)
                if delay:
                    time.sleep(delay)
        raise RemoteStoreError(
            f"partition {partition} unavailable after {attempts} attempts "
            f"(chain {self._chains[partition]}): {last}"
        )

    def _probe(self, name: str) -> bool:
        """Is a node answering pings?  Always over a fresh connection:
        a cached client may hold a socket broken by the very failure
        being repaired."""
        self._forget_client(name)
        if name in self._isolated:
            return False
        try:
            self._client(name).admin("ping")
            return True
        except RemoteStoreError:
            self._forget_client(name)
            return False

    def repair_partition(self, partition: int) -> None:
        """Proactive repair (a failure detector noticed a death the
        client has not tripped over yet -- e.g. a dead tail replica
        under ``ack=none``)."""
        self._repair(partition)

    def _repair(self, partition: int, cause: Optional[Exception] = None) -> None:
        """Probe the chain, drop the dead, promote the first survivor,
        rewire replication.  Counts as a *failover* only when the
        primary changed; every repair bumps ``chain_repairs``."""
        began = time.perf_counter()
        with tracing.span("cluster.failover", partition=partition) as span:
            old = list(self._chains[partition])
            live = [name for name in old if self._probe(name)]
            if not live:
                raise RemoteStoreError(
                    f"partition {partition}: no live replicas among {old}"
                    + (f" (repairing after: {cause})" if cause else "")
                )
            promoted = live[0] != old[0]
            self._chains[partition] = live
            self._configure_chain(partition)
            self.chain_repairs += 1
            if promoted:
                self.failovers += 1
                tracing.instant(
                    "cluster.promoted", partition=partition, primary=live[0]
                )
            span.add(chain=",".join(live), promoted=promoted)
        self.failover_ms.append((time.perf_counter() - began) * 1000.0)

    # -- topology operations (chaos / rebalance) -----------------------------

    def isolate(self, name: str) -> None:
        """Partition this client away from one endpoint (the node
        itself stays up and keeps serving its replication links)."""
        self._isolated.add(name)
        self._forget_client(name)
        tracing.instant("cluster.isolate", server=name)

    def heal(self, name: str) -> None:
        self._isolated.discard(name)
        tracing.instant("cluster.heal", server=name)

    def attach_replica(self, partition: int, name: str) -> None:
        """Resync a (re)started node from the partition's primary and
        append it at the chain tail.

        The node is assumed empty (restart = replacement node): the
        primary's full snapshot is streamed over in ``apply_batch``
        frames, then the chain is rewired so the old tail forwards to
        the newcomer.  Needs a scan-capable backing store.
        """
        self._forget_client(name)  # the old incarnation's port is stale
        snapshot = self._on_primary(partition, lambda c: c.admin_scan())
        client = self._client(name)
        for lo in range(0, len(snapshot), _COPY_BATCH):
            client.apply_batch(
                [(OP_PUT, k, v) for k, v in snapshot[lo : lo + _COPY_BATCH]]
            )
        chain = self._chains[partition]
        if name not in chain:
            chain.append(name)
        self._configure_chain(partition)
        tracing.instant(
            "cluster.attach", server=name, partition=partition, keys=len(snapshot)
        )

    # -- online rebalancing --------------------------------------------------

    def begin_migration(self, partition: int, target: str) -> None:
        """Start moving a partition to ``target``: every subsequent
        write to the partition is dual-written there while the old
        chain keeps serving."""
        if partition in self._migrations:
            raise RuntimeError(f"partition {partition} is already migrating")
        if target in self._chains[partition]:
            raise ValueError(f"{target} is already in partition {partition}'s chain")
        self._client(target).admin("ping")  # fail fast if unreachable
        self._migrations[partition] = _Migration(target)
        tracing.instant("cluster.migrate_begin", partition=partition, target=target)

    def complete_migration(self, partition: int) -> None:
        """Copy the snapshot (skipping dual-written keys) and cut over:
        the target becomes the primary, the old replicas its chain, and
        the old primary is demoted out.

        With a single writer (the harness's model) the cutover is
        atomic by construction: no op is in flight while the map entry
        swaps.
        """
        migration = self._migrations.get(partition)
        if migration is None:
            raise RuntimeError(f"partition {partition} is not migrating")
        with tracing.span(
            "cluster.migrate_cutover", partition=partition, target=migration.target
        ):
            snapshot = self._on_primary(partition, lambda c: c.admin_scan())
            target_client = self._client(migration.target)
            chunk: List[BatchOp] = []
            copied = 0
            for key, value in snapshot:
                if key in migration.dirty:
                    continue  # dual-write already delivered a newer value
                chunk.append((OP_PUT, key, value))
                copied += 1
                if len(chunk) >= _COPY_BATCH:
                    target_client.apply_batch(chunk)
                    chunk = []
            if chunk:
                target_client.apply_batch(chunk)
            old_chain = self._chains[partition]
            old_primary = old_chain[0]
            self._chains[partition] = [migration.target] + old_chain[1:]
            del self._migrations[partition]
            self._configure_chain(partition)
            # the demoted primary must stop forwarding into the chain
            try:
                self._client(old_primary).admin(
                    "configure", {"downstream": None, "sync": False}
                )
            except RemoteStoreError:
                pass  # it may be gone; the new chain no longer needs it
            self.migrations_completed += 1
            tracing.instant(
                "cluster.migrate_done",
                partition=partition,
                copied=copied,
                dual_written=len(migration.dirty),
            )

    def migrate(self, partition: int, target: str) -> None:
        """One-shot migration (empty dual-write window)."""
        self.begin_migration(partition, target)
        self.complete_migration(partition)

    def _after_write(self, partition: int, opcode: int, key: bytes, value: bytes) -> None:
        """Dual-write one op to a migration target (if migrating)."""
        migration = self._migrations.get(partition)
        if migration is None:
            return
        client = self._client(migration.target)
        if opcode == OP_MERGE:
            # the target may lack the merge base; read-repair the
            # materialized value from the primary instead of replaying
            # the operand
            current = self._on_primary(partition, lambda c: c.get(key))
            if current is None:
                client.delete(key)
            else:
                client.put(key, current)
        elif opcode == OP_PUT:
            client.put(key, value)
        else:
            client.delete(key)
        migration.dirty.add(key)

    def _after_write_batch(self, partition: int, group: Sequence[BatchOp]) -> None:
        """Dual-write a batch: non-merge keys take their final op,
        merge-touched keys read-repair their materialized value."""
        migration = self._migrations.get(partition)
        if migration is None:
            return
        direct: Dict[bytes, BatchOp] = {}
        merge_keys: Set[bytes] = set()
        for opcode, key, value in group:
            if opcode == OP_MERGE:
                direct.pop(key, None)
                merge_keys.add(key)
            elif opcode in _WRITE_OPS:
                merge_keys.discard(key)  # a later put/delete supersedes
                direct[key] = (opcode, key, value)
        client = self._client(migration.target)
        if direct:
            client.apply_batch(list(direct.values()))
            migration.dirty.update(direct)
        for key in merge_keys:
            current = self._on_primary(partition, lambda c, k=key: c.get(k))
            if current is None:
                client.delete(key)
            else:
                client.put(key, current)
            migration.dirty.add(key)

    # -- connector surface ---------------------------------------------------

    def _partition(self, key: bytes) -> int:
        return crc32(key) % self.partitions

    def get(self, key: bytes) -> Optional[bytes]:
        partition = self._partition(key)
        return self._on_primary(partition, lambda c: c.get(key))

    def put(self, key: bytes, value: bytes) -> None:
        partition = self._partition(key)
        self._on_primary(partition, lambda c: c.put(key, value))
        self._after_write(partition, OP_PUT, key, value)

    def merge(self, key: bytes, operand: bytes) -> None:
        partition = self._partition(key)
        self._on_primary(partition, lambda c: c.merge(key, operand))
        self._after_write(partition, OP_MERGE, key, operand)

    def delete(self, key: bytes) -> None:
        partition = self._partition(key)
        self._on_primary(partition, lambda c: c.delete(key))
        self._after_write(partition, OP_DELETE, key, b"")

    # -- scatter-gather fan-out ---------------------------------------------

    def _scatter(
        self, frames: Dict[int, List[BatchOp]]
    ) -> Dict[int, Optional[RemoteStoreClient]]:
        """Issue every touched partition's :data:`OP_BATCH` frame before
        any reply is read: the partitions' servers then process their
        sub-batches concurrently and a k-partition batch costs ~1 RTT
        instead of k.  A partition whose send fails (or whose client is
        already downgraded to v1) maps to None -- its gather falls back
        to the sequential :meth:`_on_primary` replay, which repairs the
        chain and retries only that sub-batch."""
        sent: Dict[int, Optional[RemoteStoreClient]] = {}
        for partition, items in frames.items():
            try:
                client = self._client(self._chains[partition][0])
                if not client._batch_supported:
                    sent[partition] = None  # v1 peer: per-op replay
                    continue
                client.batch_send(items)
            except RemoteStoreError:
                sent[partition] = None
                continue
            tracing.instant(
                "cluster.scatter", partition=partition, n=len(items)
            )
            sent[partition] = client
        return sent

    def _gather_get(
        self,
        partition: int,
        scattered: Dict[int, Optional[RemoteStoreClient]],
        subset: List[bytes],
    ) -> List[Optional[bytes]]:
        """Collect one scattered partition's get replies; any failure
        (transport death, v1 downgrade, store error) replays only this
        partition's sub-batch under the repair loop."""
        client = scattered.get(partition)
        if client is not None:
            try:
                replies = client.batch_recv(len(subset))
            except (_BatchUnsupportedError, RemoteStoreError):
                pass  # replay below: _on_primary repairs and retries
            else:
                tracing.instant(
                    "cluster.gather", partition=partition, n=len(subset)
                )
                values: Optional[List[Optional[bytes]]] = []
                for status, data in replies:
                    if status == REPLY_VALUE:
                        values.append(data)
                    elif status == REPLY_MISSING:
                        values.append(None)
                    else:  # store-level error: replay the sub-batch
                        values = None
                        break
                if values is not None:
                    return values
        return self._on_primary(partition, lambda c, s=subset: c.multi_get(s))

    def _gather_write(
        self,
        partition: int,
        scattered: Dict[int, Optional[RemoteStoreClient]],
        group: List[BatchOp],
    ) -> None:
        """Collect one scattered partition's write acks (see
        :meth:`_gather_get` for the failure contract; a replayed write
        sub-batch is at-least-once, exactly like a retried sync op)."""
        client = scattered.get(partition)
        if client is not None:
            try:
                replies = client.batch_recv(len(group))
            except (_BatchUnsupportedError, RemoteStoreError):
                pass
            else:
                tracing.instant(
                    "cluster.gather", partition=partition, n=len(group)
                )
                if replies is _BATCH_ALL_OK or all(
                    status != REPLY_ERROR for status, _ in replies
                ):
                    return
        self._on_primary(partition, lambda c, g=group: c.apply_batch(g))

    def multi_get(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        if not keys:
            return []
        groups: Dict[int, List[int]] = {}
        for index, key in enumerate(keys):
            groups.setdefault(self._partition(key), []).append(index)
        out: List[Optional[bytes]] = [None] * len(keys)
        if len(groups) == 1:
            ((partition, indices),) = groups.items()
            subset = [keys[i] for i in indices]
            values = self._on_primary(
                partition, lambda c, s=subset: c.multi_get(s)
            )
            for index, value in zip(indices, values):
                out[index] = value
            return out
        scattered = self._scatter(
            {
                partition: [(OP_GET, keys[i], b"") for i in indices]
                for partition, indices in groups.items()
            }
        )
        for partition, indices in groups.items():
            subset = [keys[i] for i in indices]
            values = self._gather_get(partition, scattered, subset)
            for index, value in zip(indices, values):
                out[index] = value
        return out

    def apply_batch(self, ops: Sequence[BatchOp]) -> None:
        if not ops:
            return
        groups: Dict[int, List[BatchOp]] = {}
        for op in ops:
            groups.setdefault(self._partition(op[1]), []).append(op)
        if len(groups) == 1:
            ((partition, group),) = groups.items()
            self._on_primary(partition, lambda c, g=group: c.apply_batch(g))
            self._after_write_batch(partition, group)
            return
        scattered = self._scatter(groups)
        for partition, group in groups.items():
            self._gather_write(partition, scattered, group)
            self._after_write_batch(partition, group)

    def pipeline(self, depth: int, on_complete) -> "_ClusterPipeline":
        """Open a pipelined session: submitted ops accumulate into a
        window that flushes as one scatter-gather fan-out (see
        :class:`_ClusterPipeline`)."""
        return _ClusterPipeline(self, depth, on_complete)

    def take_background_ns(self) -> int:
        return 0

    def flush(self) -> None:
        pass  # durability is the servers' business; nothing buffered here

    def close(self) -> None:
        for name in list(self._clients):
            self._forget_client(name)

    def __enter__(self) -> "ClusterConnector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _ClusterPipeline(PipelineSession):
    """Windowed scatter-gather over a :class:`ClusterConnector`.

    Submitted ops accumulate until the window holds ``depth`` of them,
    then flush as ONE fan-out: the window is split per partition, every
    touched partition's :data:`~repro.kvstores.remote.OP_BATCH` frame
    is sent before any reply is read, and replies are gathered in
    scatter order -- so a full window costs ~1 RTT regardless of how
    many partitions it touches.  Completion timestamps are taken at
    gather, so histogram latency includes window queueing time.

    Failover mid-gather repairs only the failed partition's chain and
    replays only its sub-batch (per-op, under the connector's
    :meth:`~ClusterConnector._on_primary` budget); the other
    partitions' replies are unaffected.  Replayed writes are
    at-least-once, exactly like a retried synchronous op.
    """

    def __init__(
        self, connector: ClusterConnector, depth: int, on_complete
    ) -> None:
        super().__init__(connector, depth, on_complete)
        self._conn = connector
        #: (opcode, key, value, arrival_ns) awaiting the next fan-out
        self._staged: List[Tuple[int, bytes, bytes, int]] = []

    @property
    def pending(self) -> int:
        return len(self._staged)

    def submit(self, opcode: int, key: bytes, value: bytes,
               arrival_ns: int) -> None:
        self._staged.append((opcode, key, value, arrival_ns))
        if len(self._staged) >= self.requested_depth:
            self.flush()

    def flush(self) -> None:
        if not self._staged:
            return
        window = self._staged
        self._staged = []
        if tracing.active() is None:
            self._flush_window(window)
            return
        with tracing.span("remote.pipeline_flush", n=len(window)):
            self._flush_window(window)

    def _flush_window(self, window: List[Tuple[int, bytes, bytes, int]]) -> None:
        conn = self._conn
        conn.inflight_depth = len(window)
        groups: Dict[int, List[Tuple[int, bytes, bytes, int]]] = {}
        for item in window:
            groups.setdefault(conn._partition(item[1]), []).append(item)
        scattered = conn._scatter(
            {
                partition: [(op, key, value) for op, key, value, _ in items]
                for partition, items in groups.items()
            }
        )
        for partition, items in groups.items():
            self._gather_window(partition, scattered, items)
        conn.pipeline_flushes += 1
        conn.flush_coalesced_ops += len(window)
        conn.inflight_depth = 0
        self.flushes += 1
        self.coalesced_ops += len(window)

    def _gather_window(
        self,
        partition: int,
        scattered: Dict[int, Optional[RemoteStoreClient]],
        items: List[Tuple[int, bytes, bytes, int]],
    ) -> None:
        conn = self._conn
        client = scattered.get(partition)
        replies = None
        if client is not None:
            try:
                replies = client.batch_recv(len(items))
            except (_BatchUnsupportedError, RemoteStoreError):
                replies = None
            else:
                tracing.instant(
                    "cluster.gather", partition=partition, n=len(items)
                )
        completed = False
        if replies is not None:
            now = time.perf_counter_ns()
            if replies is _BATCH_ALL_OK:
                for opcode, _key, _value, arrival in items:
                    self._on_complete(opcode, arrival, now, None)
                completed = True
            elif all(status != REPLY_ERROR for status, _ in replies):
                for (status, data), (opcode, _key, _value, arrival) in zip(
                    replies, items
                ):
                    value = data if status == REPLY_VALUE else None
                    self._on_complete(opcode, arrival, now, value)
                completed = True
        if not completed:
            # transport death, v1 peer, or a store-level rejection:
            # repair + per-op replay of ONLY this partition's sub-batch
            self._replay_members(partition, items)
        writes = [
            (op, key, value) for op, key, value, _ in items if op in _WRITE_OPS
        ]
        if writes:
            conn._after_write_batch(partition, writes)

    def _replay_members(
        self, partition: int, items: List[Tuple[int, bytes, bytes, int]]
    ) -> None:
        conn = self._conn
        for opcode, key, value, arrival in items:
            if opcode == OP_GET:
                reply = conn._on_primary(partition, lambda c, k=key: c.get(k))
            elif opcode == OP_PUT:
                conn._on_primary(
                    partition, lambda c, k=key, v=value: c.put(k, v)
                )
                reply = None
            elif opcode == OP_MERGE:
                conn._on_primary(
                    partition, lambda c, k=key, v=value: c.merge(k, v)
                )
                reply = None
            else:
                conn._on_primary(partition, lambda c, k=key: c.delete(k))
                reply = None
            self._on_complete(opcode, arrival, time.perf_counter_ns(), reply)

    def drain(self) -> None:
        self.flush()
