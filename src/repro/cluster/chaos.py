"""Chaos harness: kill servers mid-replay, measure what clients observe.

:class:`ChaosConnector` wraps a :class:`~repro.cluster.connector.
ClusterConnector` and fires a :class:`~repro.faults.ClusterFaultPlan`'s
actions at their logical-op offsets -- the same "op index" clock
single-node fault schedules use, so a cluster plan is as reproducible
as a crash plan.  :func:`evaluate_cluster_recovery` is the experiment:
replay a trace against a cluster under a chaos plan and report recovery
time, lost-ack window, and correctness against an uninterrupted
single-node run, exactly the shape ``evaluate_crash_recovery`` gives
one node.

Kill policy, deliberately asymmetric:

* a killed **primary** is left for the client to trip over -- the next
  op fails, the connector runs its failover, and the measured failover
  time includes real detection latency;
* a killed **replica** is followed by a proactive repair (modelling a
  failure detector), because under ``ack=none`` nothing on the client's
  request path would ever notice a dead tail.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - cycle with repro.core
    from ..core.replayer import ReplayResult

from ..faults.cluster import ClusterAction, ClusterFaultPlan
from ..faults.retry import RetryPolicy
from ..kvstores.api import BatchOp, MergeOperator
from ..kvstores.factory import create_connector
from ..obs import tracing
from ..trace import AccessTrace
from .config import ClusterConfig
from .connector import ClusterConnector
from .manager import StoreCluster


class ChaosConnector:
    """Connector wrapper that fires cluster actions between ops.

    Counts logical operations the way fault schedules do (a batch of N
    counts N); every action with ``at <= ops_so_far`` fires immediately
    before the next op is dispatched, so the schedule is a pure
    function of the plan and the trace.
    """

    def __init__(
        self,
        inner: ClusterConnector,
        cluster: StoreCluster,
        actions: Sequence[ClusterAction],
    ) -> None:
        self._inner = inner
        self._cluster = cluster
        self._pending = deque(sorted(actions, key=lambda a: a.at))
        self._ops = 0
        self.name = inner.name
        #: (at, action, resolved node) per fired action
        self.executed: List[Tuple[int, str, str]] = []
        #: actions that could not fire (target already dead / no
        #: replica to kill / never reached)
        self.skipped: List[Tuple[int, str, str]] = []
        #: acked-but-unreplicated ops observed on killed primaries --
        #: the writes a real deployment would have lost
        self.lost_ack_window = 0
        self.kills = 0
        self.restarts = 0
        self.isolations = 0

    # -- scheduling ----------------------------------------------------------

    def _tick(self, count: int) -> None:
        while self._pending and self._pending[0].at <= self._ops:
            self._fire(self._pending.popleft())
        self._ops += count

    def finish(self) -> None:
        """Mark never-reached actions as skipped (the trace ended
        before their offsets)."""
        while self._pending:
            action = self._pending.popleft()
            self.skipped.append((action.at, action.action, action.target))

    def _resolve(self, action: ClusterAction) -> Tuple[Optional[str], int]:
        """Resolve a target to a concrete node name + partition.

        Role selectors read the *current* chain: after a failover,
        ``primary:p`` is whoever the client promoted.  A restart with a
        role selector picks the partition's first dead node (the victim
        of the matching kill) -- deterministic, since kills are."""
        target = action.target
        if ":" in target:
            role, _, suffix = target.partition(":")
            partition = int(suffix)
            chain = self._inner.chain(partition)
            if action.action == "restart":
                dead = sorted(
                    name
                    for name in self._cluster.names()
                    if self._cluster.node(name).partition == partition
                    and not self._cluster.live(name)
                )
                return (dead[0] if dead else None), partition
            if role == "primary":
                return chain[0], partition
            if role == "replica":
                return (chain[-1] if len(chain) > 1 else None), partition
            raise ValueError(f"unknown role selector {target!r}")
        return target, self._cluster.node(target).partition

    def _fire(self, action: ClusterAction) -> None:
        name, partition = self._resolve(action)
        record = (self._ops, action.action, name or action.target)
        if name is None:
            self.skipped.append(record)
            return
        if action.action == "kill":
            if not self._cluster.live(name):
                self.skipped.append(record)
                return
            is_primary = self._inner.chain(partition)[0] == name
            if is_primary:
                # writes the dying primary acked but had not replicated
                # yet are exactly the cluster's durability exposure
                stats = self._cluster.replication_stats(name)
                self.lost_ack_window += int(stats.get("pending", 0))
            self._cluster.kill(name)
            self.kills += 1
            tracing.instant(
                "cluster.chaos_kill", server=name, at=self._ops, primary=is_primary
            )
            if not is_primary:
                self._inner.repair_partition(partition)
        elif action.action == "restart":
            if self._cluster.live(name):
                self.skipped.append(record)
                return
            self._cluster.restart(name)
            self._inner.attach_replica(partition, name)
            self.restarts += 1
            tracing.instant("cluster.chaos_restart", server=name, at=self._ops)
        elif action.action == "isolate":
            self._inner.isolate(name)
            self.isolations += 1
        else:  # heal
            self._inner.heal(name)
        self.executed.append(record)

    # -- connector surface ---------------------------------------------------

    def get(self, key: bytes):
        self._tick(1)
        return self._inner.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self._tick(1)
        self._inner.put(key, value)

    def merge(self, key: bytes, operand: bytes) -> None:
        self._tick(1)
        self._inner.merge(key, operand)

    def delete(self, key: bytes) -> None:
        self._tick(1)
        self._inner.delete(key)

    def multi_get(self, keys: Sequence[bytes]):
        self._tick(len(keys))
        return self._inner.multi_get(keys)

    def apply_batch(self, ops: Sequence[BatchOp]) -> None:
        self._tick(len(ops))
        self._inner.apply_batch(ops)

    def take_background_ns(self) -> int:
        return self._inner.take_background_ns()

    def flush(self) -> None:
        self._inner.flush()

    def close(self) -> None:
        self._inner.close()

    def pipeline(self, depth: int, on_complete):
        """Pipelined session with the chaos clock at submit time.

        Each submit ticks one logical op *before* the op enters the
        window, so chaos actions fire at the same logical offsets as
        synchronous replay -- a kill scheduled at op ``k`` lands while
        ops ``< k`` may still be in flight, which is exactly the race a
        real deployment exposes; the window's failover-driven replay of
        those ops is part of what the experiment measures."""
        return _ChaosPipeline(self, self._inner.pipeline(depth, on_complete))

    # -- metrics surface (mirrors ClusterConnector so register_store
    # finds the cluster gauges through the wrapper) --------------------------

    @property
    def failovers(self) -> int:
        return self._inner.failovers

    @property
    def chain_repairs(self) -> int:
        return self._inner.chain_repairs

    @property
    def _isolated(self):
        return self._inner._isolated

    def endpoints(self):
        return self._inner.endpoints()

    def reconnects_for(self, name: str) -> int:
        return self._inner.reconnects_for(name)

    @property
    def inflight_depth(self) -> int:
        return self._inner.inflight_depth

    @property
    def flush_coalesced_ops(self) -> int:
        return self._inner.flush_coalesced_ops

    @property
    def pipeline_flushes(self) -> int:
        return self._inner.pipeline_flushes


class _ChaosPipeline:
    """Ticks the chaos schedule per submit, then delegates."""

    def __init__(self, chaos: ChaosConnector, inner) -> None:
        self._chaos = chaos
        self._inner = inner

    @property
    def depth(self) -> int:
        return self._inner.depth

    @property
    def pending(self) -> int:
        return self._inner.pending

    @property
    def flushes(self) -> int:
        return self._inner.flushes

    @property
    def coalesced_ops(self) -> int:
        return self._inner.coalesced_ops

    def submit(self, opcode: int, key: bytes, value: bytes,
               arrival_ns: int) -> None:
        self._chaos._tick(1)
        self._inner.submit(opcode, key, value, arrival_ns)

    def flush(self) -> None:
        self._inner.flush()

    def drain(self) -> None:
        self._inner.drain()

    def close(self) -> None:
        self._inner.close()


@dataclass
class ClusterRecoveryResult:
    """Metrics from one chaos-replay-verify experiment."""

    #: backing store name (every node runs the same store)
    store: str
    #: compact topology label, e.g. ``3x2@all``
    cluster: str
    operations: int
    #: repairs that changed a primary
    failovers: int
    #: all chain repairs (failovers + dead-replica evictions)
    chain_repairs: int
    #: wall-clock of the slowest repair -- the client-observed outage
    recovery_ms: float
    failover_ms: List[float]
    #: acked-but-unreplicated ops on killed primaries
    lost_ack_window: int
    #: max per-link replication lag observed across surviving nodes
    replication_lag_ms: float
    kills: int
    restarts: int
    isolations: int
    actions_executed: List[Tuple[int, str, str]]
    actions_skipped: List[Tuple[int, str, str]]
    keys_checked: int
    mismatches: int
    #: every key equal to the uninterrupted single-node reference
    recovered_ok: bool
    replay: "ReplayResult"

    def summary(self) -> Dict[str, float]:
        return {
            "failovers": float(self.failovers),
            "chain_repairs": float(self.chain_repairs),
            "recovery_ms": self.recovery_ms,
            "lost_ack_window": float(self.lost_ack_window),
            "replication_lag_ms": self.replication_lag_ms,
            "kills": float(self.kills),
            "restarts": float(self.restarts),
            "recovered_ok": float(self.recovered_ok),
            "mismatches": float(self.mismatches),
        }


def evaluate_cluster_recovery(
    trace: AccessTrace,
    *,
    config: Optional[ClusterConfig] = None,
    partitions: int = 3,
    replicas: int = 1,
    ack: Optional[str] = None,
    store: str = "memory",
    store_config: Optional[dict] = None,
    chaos: Optional[ClusterFaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    merge_operator: Optional[MergeOperator] = None,
    service_rate: Optional[float] = None,
    batch_size: Optional[int] = None,
    pipeline_depth: Optional[int] = None,
    verify: bool = True,
    storage_root: Optional[str] = None,
    telemetry=None,
) -> ClusterRecoveryResult:
    """Replay ``trace`` against a cluster under a chaos plan and verify.

    1. replay the trace uninterrupted on a single local store (the
       content oracle, exactly as ``evaluate_crash_recovery`` does),
    2. replay it against a fresh ``partitions`` x ``replicas + 1``
       cluster while the chaos plan kills/restarts/isolates servers at
       its scheduled offsets,
    3. verify every unique key against the oracle and harvest the
       failure-handling counters.

    The cluster replay gets *no* per-op fault plan or retry wrapper:
    the :class:`ClusterConnector`'s failover loop is the retry layer
    (bounded by ``retry_policy``), and wrapping it again would hide
    failures the experiment exists to measure.

    Zero acked-write loss is expected only at ``ack=all``; weaker ack
    levels trade durability for latency, and the resulting mismatches
    (correlated with ``lost_ack_window``) are the honest measurement
    of that trade.
    """
    from ..core.replayer import TraceReplayer  # deferred: cycle with repro.core

    if config is None:
        config = ClusterConfig(
            partitions=partitions,
            replicas=replicas,
            ack=ack if ack is not None else "all",
            store=store,
            store_config=dict(store_config or {}),
        )
    elif ack is not None and ack != config.ack:
        config = ClusterConfig(**{**config.to_dict(), "ack": ack})
    if retry_policy is None:
        retry_policy = RetryPolicy()

    # 1. Reference: uninterrupted single-node run, kept open as oracle.
    reference = create_connector(
        config.store, merge_operator, **dict(config.store_config)
    )
    with tracing.span("cluster.reference", ops=len(trace)):
        TraceReplayer(reference, measure_latency=False).replay(trace)

    actions = chaos.schedule(config.partitions, len(trace)) if chaos else []
    cluster = StoreCluster(config, merge_operator, storage_root=storage_root)
    target: Optional[ChaosConnector] = None
    try:
        connector = ClusterConnector(cluster, retry_policy=retry_policy)
        target = ChaosConnector(connector, cluster, actions)

        # 2. The chaos replay.
        with tracing.span("cluster.replay", ops=len(trace), chaos=len(actions)):
            replay = TraceReplayer(
                target,
                service_rate=service_rate,
                batch_size=batch_size,
                pipeline_depth=pipeline_depth,
                telemetry=telemetry,
            ).replay(trace)
        target.finish()

        # replication lag over the *surviving* fleet (dead nodes report {})
        lag_ms = 0.0
        for name in cluster.names():
            stats = cluster.replication_stats(name)
            lag_ms = max(lag_ms, float(stats.get("lag_ms_max", 0.0) or 0.0))

        # 3. Verify through the cluster's read path against the oracle.
        keys_checked = 0
        mismatches = 0
        if verify:
            with tracing.span("cluster.verify"):
                for key in trace.unique_keys():
                    keys_checked += 1
                    if connector.get(key) != reference.get(key):
                        mismatches += 1

        return ClusterRecoveryResult(
            store=config.store,
            cluster=config.label,
            operations=replay.operations,
            failovers=connector.failovers,
            chain_repairs=connector.chain_repairs,
            recovery_ms=max(connector.failover_ms) if connector.failover_ms else 0.0,
            failover_ms=list(connector.failover_ms),
            lost_ack_window=target.lost_ack_window,
            replication_lag_ms=lag_ms,
            kills=target.kills,
            restarts=target.restarts,
            isolations=target.isolations,
            actions_executed=list(target.executed),
            actions_skipped=list(target.skipped),
            keys_checked=keys_checked,
            mismatches=mismatches,
            recovered_ok=verify and mismatches == 0,
            replay=replay,
        )
    finally:
        if target is not None:
            try:
                target.close()
            except Exception:
                pass
        cluster.stop()
        reference.close()
