"""Cluster topology configuration.

A :class:`ClusterConfig` names the whole shape of a serving cluster:
how many partitions, how many replicas behind each primary, the ack
level writes wait for, and which embedded store backs every node.
Loaded from JSON via the same strict unknown-keys-fail idiom as the
workload configs (:func:`repro.core.configfile.build_dataclass`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict

from ..core.configfile import build_dataclass

#: how many replicas must hold a write before the client is acked:
#: ``none`` -- primary only, replication is fire-and-forget;
#: ``one`` -- the first replica confirms; ``all`` -- the whole chain.
ACK_LEVELS = ("none", "one", "all")


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of a partitioned, replicated store cluster."""

    #: number of key partitions (crc32(key) % partitions, matching
    #: ``shard_trace``'s partitioner)
    partitions: int = 3
    #: replicas per partition *behind* the primary (0 = no replication;
    #: replication factor is ``replicas + 1``)
    replicas: int = 1
    #: ack level for replicated writes, one of :data:`ACK_LEVELS`
    ack: str = "all"
    #: embedded store backing every node (memory / rocksdb / lethe /
    #: berkeleydb; restart-resync and migration need a scan-capable
    #: store, which excludes faster)
    store: str = "memory"
    #: per-node store overrides forwarded to ``create_store``
    store_config: Dict[str, object] = field(default_factory=dict)
    #: client socket timeout per request, seconds
    timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {self.partitions}")
        if self.replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {self.replicas}")
        if self.ack not in ACK_LEVELS:
            raise ValueError(
                f"unknown ack level {self.ack!r}; expected one of {ACK_LEVELS}"
            )
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")

    @property
    def label(self) -> str:
        """Compact identity for result rows: ``3x2@all`` reads as
        3 partitions x replication-factor 2, ack=all."""
        return f"{self.partitions}x{self.replicas + 1}@{self.ack}"

    @classmethod
    def from_dict(cls, config: dict) -> "ClusterConfig":
        return build_dataclass(cls, config, "cluster")

    @classmethod
    def load(cls, path: str) -> "ClusterConfig":
        with open(path, "r", encoding="utf-8") as handle:
            config = json.load(handle)
        if not isinstance(config, dict):
            raise ValueError(f"{path}: cluster config must be a JSON object")
        return cls.from_dict(config)

    def to_dict(self) -> dict:
        return asdict(self)


def load_cluster_config(path: str) -> ClusterConfig:
    """Module-level convenience mirroring :meth:`ClusterConfig.load`."""
    return ClusterConfig.load(path)
