"""Cluster supervision: spawn, kill, restart, and replace store servers.

:class:`StoreCluster` owns the server fleet -- ``partitions`` chains of
``replicas + 1`` nodes each, every node an in-process
:class:`~repro.kvstores.remote.StoreServer` on a kernel-assigned port
(port 0, so N servers never collide).  It is deliberately dumb about
*topology*: who is primary, what the replication chain looks like, and
where traffic goes are all the :class:`~repro.cluster.connector.
ClusterConnector`'s business.  The manager only supervises processes --
which is the separation a chaos harness needs, because killing a node
must not consult the same state the client uses to route around it.

``restart`` models a *replacement* node, not local recovery: the new
server gets a fresh store (and, for disk stores, a fresh directory) and
a new port, and must be resynced from its chain by the connector
(``attach_replica``).  Local crash-recovery of one store is the axis
``evaluate_crash_recovery`` already measures.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from ..kvstores.api import KVStore, MergeOperator
from ..kvstores.factory import create_store
from ..kvstores.remote import StoreServer
from .config import ClusterConfig


class ClusterNode:
    """One supervised server slot: a stable name bound to whatever
    :class:`StoreServer` incarnation currently fills it."""

    def __init__(
        self,
        name: str,
        partition: int,
        store_factory: Callable[[int], KVStore],
    ) -> None:
        self.name = name
        self.partition = partition
        self._store_factory = store_factory
        self.server: Optional[StoreServer] = None
        #: bumped per (re)start; the factory uses it to give disk
        #: stores a fresh directory per incarnation
        self.generation = 0

    @property
    def alive(self) -> bool:
        return self.server is not None

    @property
    def address(self) -> Tuple[str, int]:
        if self.server is None:
            raise RuntimeError(f"cluster node {self.name} is down")
        return self.server.address

    def start(self) -> "ClusterNode":
        if self.server is None:
            self.generation += 1
            self.server = StoreServer(self._store_factory(self.generation)).start()
        return self

    def kill(self) -> None:
        """Abrupt death (connection resets, store abandoned)."""
        server, self.server = self.server, None
        if server is not None:
            server.kill()

    def stop(self) -> None:
        """Clean shutdown (drain, close store)."""
        server, self.server = self.server, None
        if server is not None:
            server.stop()


class StoreCluster:
    """The server fleet for one :class:`ClusterConfig`.

    Nodes are named ``p{partition}r{position}`` (``p0r0`` is partition
    0's initial primary, ``p0r1`` its first replica); migration targets
    added later via :meth:`add_node` are named ``m0``, ``m1``, ...
    Names are stable across restarts even though ports are not.
    """

    def __init__(
        self,
        config: ClusterConfig,
        merge_operator: Optional[MergeOperator] = None,
        storage_root: Optional[str] = None,
    ) -> None:
        if config.store != "memory" and storage_root is None and config.store_config.get("storage_dir"):
            raise ValueError(
                "pass storage_root= instead of store_config['storage_dir']; "
                "every node incarnation needs its own directory"
            )
        self.config = config
        self._merge_operator = merge_operator
        self._storage_root = storage_root
        self._nodes: Dict[str, ClusterNode] = {}
        self._extra = 0  # add_node counter
        self._stopped = False
        for partition in range(config.partitions):
            for position in range(config.replicas + 1):
                name = f"p{partition}r{position}"
                self._nodes[name] = ClusterNode(
                    name, partition, self._factory_for(name)
                ).start()

    def _factory_for(self, name: str) -> Callable[[int], KVStore]:
        def factory(generation: int) -> KVStore:
            overrides = dict(self.config.store_config)
            if self._storage_root is not None:
                overrides["storage_dir"] = os.path.join(
                    self._storage_root, name, f"gen{generation}"
                )
            return create_store(
                self.config.store, self._merge_operator, **overrides
            )

        return factory

    # -- inspection ----------------------------------------------------------

    def names(self) -> List[str]:
        return list(self._nodes)

    def node(self, name: str) -> ClusterNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(
                f"unknown cluster node {name!r}; have {sorted(self._nodes)}"
            ) from None

    def chain(self, partition: int) -> List[str]:
        """The *initial* chain for a partition, primary first.  The
        connector copies this at construction and owns it thereafter."""
        if not 0 <= partition < self.config.partitions:
            raise ValueError(f"no partition {partition}")
        return [
            f"p{partition}r{position}"
            for position in range(self.config.replicas + 1)
        ]

    def address(self, name: str) -> Tuple[str, int]:
        return self.node(name).address

    def live(self, name: str) -> bool:
        return self.node(name).alive

    def replication_stats(self, name: str) -> dict:
        """Downstream-link counters for a node, or ``{}`` when down.

        Safe from any thread (plain counter reads); the chaos executor
        reads ``pending`` here immediately before killing a primary to
        capture the lost-ack window."""
        node = self.node(name)
        if node.server is None:
            return {}
        return node.server.replication_stats()

    # -- topology events -----------------------------------------------------

    def kill(self, name: str) -> None:
        self.node(name).kill()

    def restart(self, name: str) -> Tuple[str, int]:
        """Bring a dead slot back as a *replacement* node (fresh store,
        new port) and return its new address."""
        node = self.node(name)
        if node.alive:
            raise RuntimeError(f"cluster node {name} is already running")
        return node.start().address

    def add_node(self, partition: int = -1) -> str:
        """Spin up an empty node (a migration target or spare) and
        return its name.  ``partition`` records intent only; the node
        serves whatever keys the connector sends it."""
        name = f"m{self._extra}"
        self._extra += 1
        node = ClusterNode(name, partition, self._factory_for(name))
        self._nodes[name] = node
        node.start()
        return name

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        for node in self._nodes.values():
            node.stop()

    def __enter__(self) -> "StoreCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
