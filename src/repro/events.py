"""Input-stream event model.

An input event carries a key, an event-time timestamp (milliseconds),
a value size, and a ``kind`` tag that datasets use to mark semantic
event types (job finish, taxi drop-off, ...) which drive operator logic
such as continuous-join invalidation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List


@dataclass(frozen=True)
class Event:
    key: bytes
    timestamp: int  # event time, in milliseconds
    value_size: int = 8
    kind: str = ""


@dataclass(frozen=True)
class Watermark:
    """No event with ``t <= timestamp`` will arrive after this marker."""

    timestamp: int


def sort_by_time(events: Iterable[Event]) -> List[Event]:
    return sorted(events, key=lambda e: e.timestamp)


def with_watermarks(
    events: Iterable[Event], frequency: int = 100
) -> Iterator[object]:
    """Interleave punctuated watermarks every ``frequency`` events.

    The watermark carries the maximum event time seen so far, matching
    the paper's configuration of punctuated watermarks with a default
    frequency of 100 events.
    """
    if frequency <= 0:
        raise ValueError("watermark frequency must be positive")
    max_time = None
    for index, event in enumerate(events, start=1):
        yield event
        max_time = event.timestamp if max_time is None else max(max_time, event.timestamp)
        if index % frequency == 0:
            yield Watermark(max_time)
    if max_time is not None:
        yield Watermark(max_time)
