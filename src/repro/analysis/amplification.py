"""Event and key-space amplification (paper section 3.2.2).

* **event amplification** -- state requests per input event; it sets
  the request rate the store must sustain relative to the stream rate
* **key-space amplification** -- distinct state keys per distinct input
  key; it determines the resulting state size.  Time-based operators
  amplify heavily because timestamps become part of state keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..events import Event
from ..trace import AccessTrace


@dataclass(frozen=True)
class Amplification:
    event_amplification: float
    keyspace_amplification: float
    num_events: int
    num_accesses: int
    distinct_input_keys: int
    distinct_state_keys: int


def measure_amplification(
    events: Sequence[Event], trace: AccessTrace
) -> Amplification:
    """Amplification of one operator run: events in, state stream out."""
    num_events = len(events)
    distinct_input = len({event.key for event in events})
    distinct_state = trace.distinct_keys()
    return Amplification(
        event_amplification=len(trace) / num_events if num_events else 0.0,
        keyspace_amplification=(
            distinct_state / distinct_input if distinct_input else 0.0
        ),
        num_events=num_events,
        num_accesses=len(trace),
        distinct_input_keys=distinct_input,
        distinct_state_keys=distinct_state,
    )


def combined_amplification(
    streams: Sequence[Sequence[Event]], trace: AccessTrace
) -> Amplification:
    """Amplification for multi-input operators (joins)."""
    merged = [event for stream in streams for event in stream]
    return measure_amplification(merged, trace)
