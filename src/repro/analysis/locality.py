"""Temporal and spatial locality metrics (paper section 3.2.3).

* **Temporal locality** -- the stack distance of each access: the
  number of unique keys touched between consecutive accesses to the
  same key (Mattson et al.'s LRU stack distance).  Computed in
  O(n log n) with a Fenwick tree over last-access positions.
* **Spatial locality** -- the number of unique key sequences (n-grams)
  of each length up to ``max_len``: fewer unique sequences than a
  shuffled trace means accesses repeat in runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


class _Fenwick:
    """Binary indexed tree over access positions."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)
        self.size = size

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self.size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of positions [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)


def stack_distances(keys: Sequence[bytes]) -> List[Optional[int]]:
    """Per-access stack distance; ``None`` marks a first-time access.

    A distance of 0 means the key was the most recently used one.
    """
    tree = _Fenwick(len(keys))
    last_position: Dict[bytes, int] = {}
    distances: List[Optional[int]] = []
    for position, key in enumerate(keys):
        previous = last_position.get(key)
        if previous is None:
            distances.append(None)
        else:
            distances.append(tree.range_sum(previous + 1, position - 1))
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[key] = position
    return distances


def finite_distances(distances: Iterable[Optional[int]]) -> List[int]:
    return [d for d in distances if d is not None]


def average_stack_distance(keys: Sequence[bytes]) -> float:
    """Mean stack distance over reuse accesses (the paper's summary
    statistic for Figure 5)."""
    finite = finite_distances(stack_distances(keys))
    if not finite:
        return 0.0
    return sum(finite) / len(finite)


def stack_distance_histogram(
    keys: Sequence[bytes], bins: Sequence[int]
) -> List[int]:
    """Histogram of finite stack distances over ``bins`` boundaries.

    ``bins`` are upper edges; the last bucket is open-ended.
    Returns ``len(bins) + 1`` counts.
    """
    counts = [0] * (len(bins) + 1)
    for distance in finite_distances(stack_distances(keys)):
        for index, edge in enumerate(bins):
            if distance <= edge:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    return counts


def unique_sequence_counts(
    keys: Sequence[bytes], max_len: int = 10
) -> Dict[int, int]:
    """Number of unique key n-grams for each length 1..max_len."""
    if max_len <= 0:
        raise ValueError("max_len must be positive")
    counts: Dict[int, int] = {}
    n = len(keys)
    for length in range(1, max_len + 1):
        if n < length:
            counts[length] = 0
            continue
        seen = set()
        window = tuple(keys[:length])
        seen.add(hash(window))
        for i in range(length, n):
            window = window[1:] + (keys[i],)
            seen.add(hash(window))
        counts[length] = len(seen)
    return counts


def total_unique_sequences(keys: Sequence[bytes], max_len: int = 10) -> int:
    """Total unique sequences across all lengths up to ``max_len``."""
    return sum(unique_sequence_counts(keys, max_len).values())
