"""Workload characterization toolkit (paper sections 3 and 4)."""

from .amplification import Amplification, combined_amplification, measure_amplification
from .arrivals import (
    ArrivalStats,
    arrival_stats,
    event_arrival_stats,
    peak_to_mean_ratio,
    rate_over_time,
)
from .cache_model import (
    CacheRecommendation,
    MissRatioCurve,
    compare_working_set_vs_cache,
    miss_ratio_curve,
    recommend_cache_size,
)
from .composition import Composition, composition_of
from .prefetch import (
    MarkovPrefetcher,
    PrefetchReport,
    predictability_gain,
    prefetch_hit_ratio,
)
from .locality import (
    average_stack_distance,
    finite_distances,
    stack_distance_histogram,
    stack_distances,
    total_unique_sequences,
    unique_sequence_counts,
)
from .report import print_table, render_table
from .stats import (
    KSResult,
    frequency_ranks,
    key_indices,
    ks_test_keys,
    rank_indices,
    wasserstein_keys,
)
from .working_set import (
    max_working_set,
    single_access_key_fraction,
    ttl_per_key,
    ttl_percentiles,
    working_set_over_time,
)

__all__ = [
    "Amplification",
    "ArrivalStats",
    "CacheRecommendation",
    "arrival_stats",
    "event_arrival_stats",
    "peak_to_mean_ratio",
    "rate_over_time",
    "Composition",
    "KSResult",
    "MarkovPrefetcher",
    "MissRatioCurve",
    "PrefetchReport",
    "predictability_gain",
    "prefetch_hit_ratio",
    "compare_working_set_vs_cache",
    "miss_ratio_curve",
    "recommend_cache_size",
    "average_stack_distance",
    "combined_amplification",
    "composition_of",
    "finite_distances",
    "frequency_ranks",
    "key_indices",
    "ks_test_keys",
    "max_working_set",
    "measure_amplification",
    "print_table",
    "rank_indices",
    "render_table",
    "single_access_key_fraction",
    "stack_distance_histogram",
    "stack_distances",
    "total_unique_sequences",
    "ttl_per_key",
    "ttl_percentiles",
    "unique_sequence_counts",
    "wasserstein_keys",
    "working_set_over_time",
]
