"""Cache sizing from temporal locality (paper section 8, future work).

The paper suggests its stack-distance analysis "could be used to
provide automatic cache size tuning in state stores".  This module
implements that: by Mattson's inclusion property, an LRU cache of
capacity ``c`` hits exactly the accesses whose stack distance is
``< c``, so one pass over a trace yields the full miss-ratio curve and
the smallest cache that meets a target hit rate.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..trace import AccessTrace
from .locality import stack_distances


@dataclass(frozen=True)
class MissRatioCurve:
    """Miss ratio as a function of LRU cache capacity (in keys)."""

    #: sorted cache sizes (number of cached keys)
    sizes: Tuple[int, ...]
    #: miss ratio at each size
    miss_ratios: Tuple[float, ...]
    total_accesses: int
    #: misses that no finite cache avoids (first-time accesses)
    compulsory_misses: int

    def miss_ratio_at(self, cache_keys: int) -> float:
        """Miss ratio for an LRU cache holding ``cache_keys`` keys."""
        if not self.sizes:
            return 0.0
        position = bisect.bisect_right(self.sizes, cache_keys) - 1
        if position < 0:
            return 1.0
        return self.miss_ratios[position]

    def smallest_size_for(self, target_hit_ratio: float) -> Optional[int]:
        """Smallest cache meeting the hit-rate target, if any."""
        for size, miss in zip(self.sizes, self.miss_ratios):
            if 1.0 - miss >= target_hit_ratio:
                return size
        return None


def miss_ratio_curve(
    trace: AccessTrace, sizes: Optional[Sequence[int]] = None
) -> MissRatioCurve:
    """One-pass Mattson analysis of a state access trace.

    ``sizes`` selects the cache capacities to evaluate; by default a
    geometric ladder up to the trace's distinct key count.
    """
    keys = trace.key_sequence()
    distances = stack_distances(keys)
    total = len(distances)
    if total == 0:
        return MissRatioCurve((), (), 0, 0)
    compulsory = sum(1 for d in distances if d is None)
    finite = sorted(d for d in distances if d is not None)

    if sizes is None:
        distinct = len(set(keys))
        ladder = []
        size = 1
        while size < distinct:
            ladder.append(size)
            size *= 2
        ladder.append(distinct)
        sizes = ladder
    sizes = sorted(set(int(s) for s in sizes if s > 0))

    ratios: List[float] = []
    for size in sizes:
        hits = bisect.bisect_left(finite, size)  # distances < size
        ratios.append((total - hits) / total)
    return MissRatioCurve(tuple(sizes), tuple(ratios), total, compulsory)


@dataclass(frozen=True)
class CacheRecommendation:
    cache_keys: int
    cache_bytes: int
    expected_hit_ratio: float
    target_hit_ratio: float
    mean_entry_bytes: float


def recommend_cache_size(
    trace: AccessTrace,
    target_hit_ratio: float = 0.9,
    entry_overhead_bytes: int = 64,
) -> Optional[CacheRecommendation]:
    """Suggest the smallest LRU cache meeting a hit-rate target.

    The byte figure scales the key-granularity curve by the trace's
    mean value size plus a per-entry overhead -- the knob a state-store
    operator actually sets (e.g. RocksDB ``block_cache_size``).
    """
    if not 0.0 < target_hit_ratio < 1.0:
        raise ValueError("target_hit_ratio must be in (0, 1)")
    curve = miss_ratio_curve(trace)
    size = curve.smallest_size_for(target_hit_ratio)
    if size is None:
        return None
    value_sizes = [size for size in trace.value_sizes if size > 0]
    mean_value = sum(value_sizes) / len(value_sizes) if value_sizes else 0.0
    mean_entry = mean_value + entry_overhead_bytes
    return CacheRecommendation(
        cache_keys=size,
        cache_bytes=int(size * mean_entry),
        expected_hit_ratio=1.0 - curve.miss_ratio_at(size),
        target_hit_ratio=target_hit_ratio,
        mean_entry_bytes=mean_entry,
    )


def compare_working_set_vs_cache(
    trace: AccessTrace, cache_keys: int
) -> Dict[str, float]:
    """Quick summary relating a cache budget to the trace's locality."""
    curve = miss_ratio_curve(trace, sizes=[cache_keys])
    return {
        "cache_keys": float(cache_keys),
        "miss_ratio": curve.miss_ratio_at(cache_keys),
        "compulsory_miss_ratio": (
            curve.compulsory_misses / curve.total_accesses
            if curve.total_accesses
            else 0.0
        ),
    }
