"""Distribution-distance statistics: the KS test and Wasserstein metric
used in Table 2 and section 4.

The paper maps the empirical key distributions of two traces onto a
common numeric domain ``[0, #distinct_keys)`` before comparing them.
We index each trace's keys by *popularity rank* (most-accessed key is
index 0) and normalize to [0, 1) for the KS test -- this compares the
shape of the key-frequency distributions independent of key identity,
so a skewed input stream versus a near-uniform window state stream
yields the large D statistics the paper reports, while continuous
aggregation (identical distribution) yields D = 0.  The Wasserstein
distance is reported on the raw rank domain, matching the magnitudes
quoted in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np
from scipy import stats as scipy_stats


def key_indices(keys: Sequence[bytes]) -> np.ndarray:
    """Map each access to its key's first-appearance index."""
    index_of: Dict[bytes, int] = {}
    out = np.empty(len(keys), dtype=np.int64)
    for position, key in enumerate(keys):
        idx = index_of.get(key)
        if idx is None:
            idx = len(index_of)
            index_of[key] = idx
        out[position] = idx
    return out


def rank_indices(keys: Sequence[bytes]) -> np.ndarray:
    """Map each access to its key's popularity rank (0 = hottest)."""
    counts: Dict[bytes, int] = {}
    for key in keys:
        counts[key] = counts.get(key, 0) + 1
    ranked = sorted(counts, key=lambda k: (-counts[k], k))
    rank_of = {key: rank for rank, key in enumerate(ranked)}
    out = np.empty(len(keys), dtype=np.int64)
    for position, key in enumerate(keys):
        out[position] = rank_of[key]
    return out


@dataclass(frozen=True)
class KSResult:
    statistic: float  # D
    p_value: float
    n: int  # input sample size
    m: int  # state sample size

    def passes(self, alpha: float = 0.001) -> bool:
        """True when the null hypothesis (same distribution) survives."""
        return self.p_value > alpha


def ks_test_keys(
    input_keys: Sequence[bytes], state_keys: Sequence[bytes]
) -> KSResult:
    """Two-sample KS test between key distributions of two traces."""
    a = rank_indices(input_keys)
    b = rank_indices(state_keys)
    # Normalize each to [0, 1) over its own distinct-key domain so the
    # two samples are comparable regardless of key cardinality.
    a_norm = a / max(1, a.max() + 1)
    b_norm = b / max(1, b.max() + 1)
    statistic, p_value = scipy_stats.ks_2samp(a_norm, b_norm)
    return KSResult(float(statistic), float(p_value), len(a), len(b))


def wasserstein_keys(
    left_keys: Sequence[bytes], right_keys: Sequence[bytes]
) -> float:
    """Wasserstein distance between key-index distributions.

    Computed on the raw popularity-rank domain, as the paper does when
    quantifying YCSB's distance from real traces.
    """
    a = rank_indices(left_keys)
    b = rank_indices(right_keys)
    return float(scipy_stats.wasserstein_distance(a, b))


def frequency_ranks(keys: Sequence[bytes]) -> List[int]:
    """Access counts sorted descending (popularity profile)."""
    counts: Dict[bytes, int] = {}
    for key in keys:
        counts[key] = counts.get(key, 0) + 1
    return sorted(counts.values(), reverse=True)
