"""Request arrival-pattern analysis.

The paper's related work (Pitchumani et al.) stresses that realistic
benchmarks need realistic request inter-arrival times, and Gadget's
event generator exposes the arrival process as a first-class knob.
This module closes the loop: it characterizes the *timestamp* dimension
of an event stream or state access trace -- inter-arrival statistics,
burstiness, and rate over time -- so a generated stream can be checked
against the stream it models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class ArrivalStats:
    """Summary of the gaps between consecutive timestamps."""

    count: int
    mean_gap: float
    std_gap: float
    min_gap: int
    max_gap: int
    #: coefficient of variation; ~1 for Poisson, >1 bursty, <1 regular
    cv: float
    #: events per second implied by the mean gap (timestamps in ms)
    rate_per_s: float

    @property
    def burstiness(self) -> str:
        """Coarse label following the CV convention."""
        if self.cv > 1.2:
            return "bursty"
        if self.cv < 0.8:
            return "regular"
        return "poisson-like"


def _gaps(timestamps: Sequence[int]) -> List[int]:
    return [b - a for a, b in zip(timestamps, timestamps[1:]) if b >= a]


def arrival_stats(timestamps: Sequence[int]) -> ArrivalStats:
    """Inter-arrival statistics of an ordered timestamp sequence."""
    gaps = _gaps(timestamps)
    if not gaps:
        return ArrivalStats(0, 0.0, 0.0, 0, 0, 0.0, 0.0)
    mean = sum(gaps) / len(gaps)
    variance = sum((g - mean) ** 2 for g in gaps) / len(gaps)
    std = math.sqrt(variance)
    cv = std / mean if mean > 0 else 0.0
    rate = 1000.0 / mean if mean > 0 else 0.0
    return ArrivalStats(
        count=len(gaps),
        mean_gap=mean,
        std_gap=std,
        min_gap=min(gaps),
        max_gap=max(gaps),
        cv=cv,
        rate_per_s=rate,
    )


def event_arrival_stats(events) -> ArrivalStats:
    """Arrival statistics of an event stream (uses event timestamps)."""
    return arrival_stats([e.timestamp for e in events])


def rate_over_time(
    timestamps: Sequence[int], window_ms: int = 1000
) -> List[Tuple[int, int]]:
    """(window start, events in window) across the stream's lifetime."""
    if window_ms <= 0:
        raise ValueError("window_ms must be positive")
    if not timestamps:
        return []
    counts: dict = {}
    for t in timestamps:
        bucket = t // window_ms * window_ms
        counts[bucket] = counts.get(bucket, 0) + 1
    return sorted(counts.items())


def peak_to_mean_ratio(
    timestamps: Sequence[int], window_ms: int = 1000
) -> float:
    """Peak window rate over mean window rate (burst amplitude)."""
    series = rate_over_time(timestamps, window_ms)
    if not series:
        return 0.0
    rates = [count for _, count in series]
    mean = sum(rates) / len(rates)
    return max(rates) / mean if mean > 0 else 0.0
