"""Prefetch modelling from spatial locality (paper section 8).

The paper suggests its spatial-locality findings "can guide the design
of novel prefetching mechanisms".  This module quantifies how
exploitable a state access stream's key sequences are: a first-order
Markov predictor is trained on a prefix of the trace and its next-key
prediction accuracy is evaluated on the remainder.  Streaming traces
(windows emit get-put pairs on the same key, firing sweeps are ordered)
are highly predictable; shuffled or YCSB traces are not -- which is
exactly why prefetching is a promising streaming-specific optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..trace import AccessTrace


@dataclass(frozen=True)
class PrefetchReport:
    """Accuracy of next-key prediction on the evaluation split."""

    predictions: int
    hits: int
    #: accesses whose key was never seen during training
    cold_keys: int

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.predictions if self.predictions else 0.0


class MarkovPrefetcher:
    """First-order next-key predictor.

    For each key it remembers the most frequent successor observed
    during training; ``predict`` returns that successor or ``None``
    for unseen keys.
    """

    def __init__(self) -> None:
        self._successors: Dict[bytes, Dict[bytes, int]] = {}
        self._best: Dict[bytes, bytes] = {}

    def train(self, keys: Sequence[bytes]) -> None:
        for current, following in zip(keys, keys[1:]):
            counts = self._successors.setdefault(current, {})
            counts[following] = counts.get(following, 0) + 1
        self._best = {
            key: max(counts, key=counts.get)
            for key, counts in self._successors.items()
        }

    def predict(self, key: bytes) -> Optional[bytes]:
        return self._best.get(key)

    def __len__(self) -> int:
        return len(self._best)


def prefetch_hit_ratio(
    trace: AccessTrace, train_fraction: float = 0.5
) -> PrefetchReport:
    """Train on a prefix of ``trace`` and score next-key prediction on
    the remainder."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    keys = trace.key_sequence()
    if len(keys) < 4:
        return PrefetchReport(0, 0, 0)
    split = int(len(keys) * train_fraction)
    prefetcher = MarkovPrefetcher()
    prefetcher.train(keys[:split])

    predictions = 0
    hits = 0
    cold = 0
    for current, following in zip(keys[split:], keys[split + 1 :]):
        predicted = prefetcher.predict(current)
        if predicted is None:
            cold += 1
            continue
        predictions += 1
        if predicted == following:
            hits += 1
    return PrefetchReport(predictions, hits, cold)


def predictability_gain(
    trace: AccessTrace, shuffled: AccessTrace, train_fraction: float = 0.5
) -> Tuple[float, float]:
    """(real, shuffled) prefetch hit ratios -- the exploitable locality."""
    real = prefetch_hit_ratio(trace, train_fraction)
    chance = prefetch_hit_ratio(shuffled, train_fraction)
    return real.hit_ratio, chance.hit_ratio
