"""Plain-text table formatting for benchmark output.

The benchmark harness prints every reproduced table/figure as an
aligned text table so results can be compared against the paper's rows
directly in the terminal (and in ``bench_output.txt``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned text table."""
    string_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in string_rows)
    return "\n".join(parts)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> None:
    print()
    print(render_table(headers, rows, title))
    print()
