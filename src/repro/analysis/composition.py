"""Workload composition: the op-type breakdown of Table 1."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..trace import AccessTrace, OpType


@dataclass(frozen=True)
class Composition:
    get: float
    put: float
    merge: float
    delete: float
    total_ops: int

    @property
    def write_fraction(self) -> float:
        """Puts plus merges (the paper groups them as writes)."""
        return self.put + self.merge

    def classify(self) -> str:
        """The paper's labels: update-heavy vs write-heavy.

        A workload is *write heavy* when writes clearly dominate reads
        (holistic windows); otherwise an even get/write mix makes it
        *update heavy*.
        """
        if self.write_fraction > 1.5 * self.get:
            return "write-heavy"
        return "update-heavy"

    def as_row(self) -> Dict[str, float]:
        return {
            "GET": self.get,
            "PUT": self.put,
            "MERGE": self.merge,
            "DELETE": self.delete,
        }


def composition_of(trace: AccessTrace) -> Composition:
    fractions = trace.op_fractions()
    return Composition(
        get=fractions[OpType.GET],
        put=fractions[OpType.PUT],
        merge=fractions[OpType.MERGE],
        delete=fractions[OpType.DELETE],
        total_ops=len(trace),
    )
