"""Working set evolution and key Time-to-Live (paper section 3.2.3).

* **working key set** -- the set of live keys at a point in the state
  access stream: keys that have been written (put/merge) and not yet
  deleted.  Sampled every ``step`` operations, this shows streaming
  state's ephemerality (Figures 5 bottom and 6).
* **TTL** -- the number of trace steps between the first and last
  access of a key (Table 3).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..trace import AccessTrace


def working_set_over_time(
    trace: AccessTrace, step: int = 100
) -> List[Tuple[int, int]]:
    """Sample ``(operation_index, live_key_count)`` every ``step`` ops."""
    if step <= 0:
        raise ValueError("step must be positive")
    # Columnar scan: opcodes and interned key ids, no StateAccess
    # materialization (a live set of ints has the same cardinality as
    # a live set of keys).
    live = set()
    add = live.add
    discard = live.discard
    samples: List[Tuple[int, int]] = []
    for index, (code, kid) in enumerate(zip(trace.op_codes, trace.key_ids)):
        if code == 1 or code == 2:  # put / merge
            add(kid)
        elif code == 3:  # delete
            discard(kid)
        if (index + 1) % step == 0:
            samples.append((index + 1, len(live)))
    samples.append((len(trace), len(live)))
    return samples


def max_working_set(trace: AccessTrace, step: int = 100) -> int:
    return max(size for _, size in working_set_over_time(trace, step))


def ttl_per_key(trace: AccessTrace) -> Dict[bytes, int]:
    """Steps between first and last access for every key."""
    first: Dict[int, int] = {}
    last: Dict[int, int] = {}
    for index, kid in enumerate(trace.key_ids):
        if kid not in first:
            first[kid] = index
        last[kid] = index
    keys = trace.unique_keys()
    return {keys[kid]: last[kid] - first[kid] for kid in first}


def ttl_percentiles(
    trace: AccessTrace,
    percentiles: Sequence[float] = (50.0, 90.0, 99.9),
    sample_keys: Optional[int] = 1000,
    seed: int = 13,
) -> Dict[str, float]:
    """TTL percentiles over a random key sample (Table 3 methodology)."""
    ttls = ttl_per_key(trace)
    keys = list(ttls)
    if sample_keys is not None and len(keys) > sample_keys:
        rng = random.Random(seed)
        keys = rng.sample(keys, sample_keys)
    values = sorted(ttls[key] for key in keys)
    if not values:
        return {f"p{p}": 0.0 for p in percentiles} | {"max": 0.0}
    result = {}
    for p in percentiles:
        rank = min(len(values) - 1, max(0, int(round(p / 100.0 * (len(values) - 1)))))
        result[f"p{p:g}"] = float(values[rank])
    result["max"] = float(values[-1])
    return result


def single_access_key_fraction(trace: AccessTrace) -> float:
    """Fraction of keys accessed exactly once.

    The paper observes up to 90% single-access keys in some YCSB
    workloads -- something that never happens in real streaming traces.
    """
    counts: Dict[int, int] = {}
    get = counts.get
    for kid in trace.key_ids:
        counts[kid] = get(kid, 0) + 1
    if not counts:
        return 0.0
    singles = sum(1 for count in counts.values() if count == 1)
    return singles / len(counts)
